//===- schedcheck/Sched.cpp - deterministic interleaving explorer --------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Logical threads are carried by real OS threads but serialized through a
// scheduler gate (Mu/Cv/Active): exactly one logical thread executes between
// schedule points, and it hands the gate over explicitly. Compared to
// ucontext fibers this costs one OS thread per logical thread per execution
// (tens of microseconds), but thread_local state — EBR records, pool
// magazines — works per-logical-thread with no special handling, and there
// are no hand-rolled stacks to corrupt.
//
// Determinism contract: given the same scenario body, the same sequence of
// scheduling choices yields the same sequence of instrumented operations.
// Two things could break that across executions inside one explore() call,
// and both are neutralized in runOne():
//  - object pools would hand back different (or no) cached objects depending
//    on the previous execution → pool::drainAllForTesting() empties them;
//  - EBR bags and the retire-pacing counter would carry over → a
//    drainForTesting() between executions resets them, and one serial
//    *warmup* execution stabilizes the thread-record registry size before
//    exploration starts (records are reused afterwards).
//
//===----------------------------------------------------------------------===//

#include "schedcheck/Sched.h"

#include "schedcheck/HbClocks.h"
#include "schedcheck/RaceReport.h"

#include "reclaim/Ebr.h"
#include "support/ObjectPool.h"

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cqs {
namespace sc {

namespace {

// The scheduler's thread cap is the vector clocks' width (HbClocks.h).
static_assert(MaxThreads == 16, "clock width and scheduler cap must agree");
constexpr std::uint64_t PayloadMask = (1ull << 60) - 1;

/// Schedule points a *timed* block stays parked before its modelled
/// deadline expires and the thread becomes runnable again (spuriously, as
/// far as the caller can tell — it re-checks predicate and deadline).
/// Small enough that DFS enumeration stays tractable, large enough that
/// the peer expected to satisfy the wait usually gets there first.
constexpr std::uint64_t TimedBlockBudget = 12;

/// Thrown (only) out of blocking primitives to unwind a logical thread that
/// can never be woken once the run is aborting. Never thrown from preOp, so
/// it cannot propagate through a destructor's atomic access.
struct Aborted {};

/// Local splitmix64 so this file has no dependency on support/Rng.h.
struct Mix64 {
  std::uint64_t X = 0;
  std::uint64_t next() {
    std::uint64_t Z = (X += 0x9e3779b97f4a7c15ull);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
};

struct Event {
  std::uint64_t Idx = 0;
  unsigned Tid = 0;
  const char *Op = "";
  unsigned AddrId = ~0u; // stable per-run id; ~0u = no address
  std::uint64_t Arg = 0;
  std::uint64_t Res = 0;
  bool HasRes = false;
  const char *File = "";
  int Line = 0;
};

struct LogicalThread {
  enum class St { Runnable, BlockedWord, BlockedJoin, Done };

  unsigned Tid = 0;
  std::function<void()> Fn;
  std::thread Os;
  St State = St::Runnable;
  // BlockedWord bookkeeping: enabled again once Sample(WaitAddr) !=
  // WaitExpected or a notify arrived (sticky until the thread next runs).
  // A timed block is additionally enabled once the run's step counter
  // reaches TimedWakeStep (modelled deadline expiry).
  const void *WaitAddr = nullptr;
  std::uint64_t WaitExpected = 0;
  std::uint64_t (*WaitSample)(const void *) = nullptr;
  bool WokenByNotify = false;
  bool TimedWait = false;
  std::uint64_t TimedWakeStep = 0;
  const char *WaitFile = "";
  int WaitLine = 0;
  unsigned JoinTarget = 0;

  // ---- happens-before state (DESIGN.md §11) --------------------------
  ThreadHb Hb;
  // The access announced by the latest preOp, applied at postOp time —
  // i.e. when the operation has actually executed and the word's release
  // clock is the one the access observes.
  AccessKind PendKind = AccessKind::None;
  const void *PendAddr = nullptr;
  std::memory_order PendOk = std::memory_order_seq_cst;
  std::memory_order PendFail = std::memory_order_seq_cst;
  const char *PendOp = "";
  const char *PendFile = "";
  int PendLine = 0;
};

const char *stratName(Strategy S) {
  switch (S) {
  case Strategy::Dfs:
    return "dfs";
  case Strategy::Random:
    return "random";
  case Strategy::Pct:
    return "pct";
  }
  return "?";
}

/// Trace lines use the same repo-relative paths as race reports.
const char *trimPath(const char *F) { return trimSourcePath(F); }

bool decodeSeed(std::uint64_t Seed, Strategy &S, std::uint64_t &Payload) {
  unsigned Top = static_cast<unsigned>(Seed >> 60);
  if (Top < 1 || Top > 3)
    return false;
  S = static_cast<Strategy>(Top - 1);
  Payload = Seed & PayloadMask;
  return true;
}

class Run;
// ---- abort hook ----------------------------------------------------------
// Scenario code can abort outside sc::check — assert() in a Debug build is
// the common case. The message is pre-formatted per execution (snprintf is
// not async-signal-safe; write() is), so even an assert failure prints the
// seed that deterministically reproduces it. PendingReport additionally
// carries the run's first recorded failure (typically an HB race report:
// sites + clocks), pre-rendered at fail() time, so a CI log of an aborting
// run is actionable without a local replay.
char AbortMsg[192];
int AbortMsgLen = 0;
char PendingReport[4096];
int PendingReportLen = 0;

#if defined(__unix__) || defined(__APPLE__)
extern "C" void abortSeedHandler(int Sig) {
  if (AbortMsgLen > 0)
    (void)!write(2, AbortMsg, (std::size_t)AbortMsgLen);
  if (PendingReportLen > 0)
    (void)!write(2, PendingReport, (std::size_t)PendingReportLen);
  std::signal(Sig, SIG_DFL);
  std::raise(Sig);
}

void (*PrevAbortHandler)(int) = nullptr;

void installAbortHook() { PrevAbortHandler = std::signal(SIGABRT, abortSeedHandler); }

void uninstallAbortHook() {
  std::signal(SIGABRT, PrevAbortHandler ? PrevAbortHandler : SIG_DFL);
  AbortMsgLen = 0;
  PendingReportLen = 0;
}
#else
void installAbortHook() {}
void uninstallAbortHook() {
  AbortMsgLen = 0;
  PendingReportLen = 0;
}
#endif

Run *GRun = nullptr;
thread_local LogicalThread *TlsLT = nullptr;

/// Exploration order at a decision point, shared by DFS (choice index
/// enumerates this order), the serial chooser (always index 0... for yield
/// points) and trace semantics:
///  - normal point: current thread first (if enabled), then the others in
///    ascending-cyclic tid order — so choice 0 never costs a preemption;
///  - yield point (or the current thread is blocked/exiting): the *others*
///    in ascending-cyclic order, current thread last and only if nobody
///    else can run. A yield always switching away when possible is what
///    keeps spin loops from generating unbounded "stay" schedules; the
///    skipped interleavings are reachable anyway through the loop's own
///    atomic-load points.
void candidateOrder(std::uint32_t Mask, unsigned Cur, bool CurEnabled,
                    bool Yield, std::vector<unsigned> &Out) {
  Out.clear();
  if (!Yield && CurEnabled)
    Out.push_back(Cur);
  for (unsigned I = 1; I < MaxThreads; ++I) {
    unsigned T = (Cur + I) % MaxThreads;
    if (Mask & (1u << T))
      Out.push_back(T);
  }
  if (Yield && CurEnabled && Out.empty())
    Out.push_back(Cur);
}

struct DfsFrame {
  std::uint32_t Mask = 0;
  unsigned Cur = 0;
  bool CurEnabled = false;
  bool Yield = false;
  unsigned ChoiceIdx = 0;
  int PreemptionsBefore = 0;
};

int switchCost(const DfsFrame &F, unsigned Choice) {
  return (!F.Yield && F.CurEnabled && Choice != F.Cur) ? 1 : 0;
}

struct DfsState {
  // Persistent across executions: the choice-index prefix the next
  // execution must follow. Rebuilt by nextPrefix() after each run.
  std::vector<unsigned> Prefix;
  // Per-execution: the decision points actually taken.
  std::vector<DfsFrame> Stack;
  unsigned DecisionIdx = 0;
  int Preemptions = 0;

  void beginRun() {
    Stack.clear();
    DecisionIdx = 0;
    Preemptions = 0;
  }

  /// Backtrack: find the deepest frame with an untried admissible
  /// alternative, set Prefix to replay up to it. False = space exhausted.
  bool nextPrefix(int Bound) {
    std::vector<unsigned> Cands;
    while (!Stack.empty()) {
      const DfsFrame &F = Stack.back();
      candidateOrder(F.Mask, F.Cur, F.CurEnabled, F.Yield, Cands);
      for (unsigned I = F.ChoiceIdx + 1; I < Cands.size(); ++I) {
        if (F.PreemptionsBefore + switchCost(F, Cands[I]) <= Bound) {
          Prefix.clear();
          for (std::size_t K = 0; K + 1 < Stack.size(); ++K)
            Prefix.push_back(Stack[K].ChoiceIdx);
          Prefix.push_back(I);
          return true;
        }
      }
      Stack.pop_back();
    }
    return false;
  }
};

enum class Mode { Serial, Strategy };

class Run {
public:
  explicit Run(const Options &O)
      : Opts(O), Strat(O.Strat), HbEnabled(O.HbCheck) {}

  Options Opts;
  Strategy Strat;

  // ---- scheduler gate -------------------------------------------------
  std::mutex Mu;
  std::condition_variable Cv;
  int Active = -1;
  std::atomic<bool> Aborting{false};
  bool ExecDone = false;
  std::vector<std::unique_ptr<LogicalThread>> Threads;

  // ---- per-execution state -------------------------------------------
  Mode RunMode = Mode::Serial;
  std::uint64_t RunSeed = 0;
  std::uint64_t Steps = 0;
  bool TruncatedRun = false;
  std::vector<Event> Ring;
  std::size_t RingPos = 0;
  std::size_t LastSlot = 0;
  std::uint64_t EventCount = 0;
  std::vector<const void *> AddrIds;

  // ---- happens-before state (indexed by addrId) ----------------------
  bool HbEnabled = false;
  /// Per-atomic-word release clocks.
  std::vector<WordHb> Words;
  /// Per-plain-variable (sc::Data) last-write / last-read epochs.
  std::vector<PlainHb> Plains;
  /// Bitmask of logical threads that ever produced an event on an address;
  /// the deadlock detector's wait-for edges come from here.
  std::vector<std::uint32_t> TouchedBy;

  // ---- strategy state -------------------------------------------------
  DfsState Dfs;
  Mix64 Rng;
  std::uint64_t PctPri[MaxThreads] = {};
  std::vector<std::uint64_t> PctChange;

  // ---- aggregate / failure state -------------------------------------
  std::uint64_t Executions = 0;
  std::uint64_t TruncatedCount = 0;
  bool Failed = false;
  std::uint64_t FailSeed = 0;
  std::string FailReport;
  std::string FailTrace;

  // =====================================================================

  unsigned addrId(const void *P) {
    if (!P)
      return ~0u;
    for (std::size_t I = 0; I < AddrIds.size(); ++I)
      if (AddrIds[I] == P)
        return static_cast<unsigned>(I);
    AddrIds.push_back(P);
    return static_cast<unsigned>(AddrIds.size() - 1);
  }

  // Mu held.
  void recordEvent(unsigned Tid, const char *Op, const void *Addr,
                   std::uint64_t Arg, const char *File, int Line) {
    Event E;
    E.Idx = EventCount++;
    E.Tid = Tid;
    E.Op = Op;
    E.AddrId = addrId(Addr);
    if (E.AddrId != ~0u) {
      if (TouchedBy.size() <= E.AddrId)
        TouchedBy.resize(E.AddrId + 1, 0);
      TouchedBy[E.AddrId] |= 1u << Tid;
    }
    E.Arg = Arg;
    E.File = File ? File : "";
    E.Line = Line;
    std::size_t Cap = Opts.TraceTail > 0 ? (std::size_t)Opts.TraceTail : 1;
    if (Ring.size() < Cap) {
      LastSlot = Ring.size();
      Ring.push_back(E);
    } else {
      LastSlot = RingPos;
      Ring[RingPos] = E;
      RingPos = (RingPos + 1) % Cap;
    }
  }

  // Mu held. Counts a schedule point; flips to round-robin past MaxSteps
  // and hard-aborts the process if even round-robin cannot finish the run
  // (a modelling bug or a genuine livelock in library code).
  void bumpStep() {
    ++Steps;
    std::uint64_t HardCap = (std::uint64_t)Opts.MaxSteps * 20 + 10000;
    if (Steps > HardCap) {
      std::fprintf(stderr,
                   "schedcheck: hard livelock cap hit (%llu schedule points); "
                   "seed=0x%016llx — replay with CQS_SCHEDCHECK_SEED\n",
                   (unsigned long long)Steps, (unsigned long long)RunSeed);
      std::fflush(stderr);
      std::abort();
    }
    if (Steps > (std::uint64_t)Opts.MaxSteps && !TruncatedRun) {
      TruncatedRun = true;
      ++TruncatedCount;
    }
  }

  // Mu held. Sampling the waited-on words is safe here: only the gate
  // holder executes instrumented operations, and it is inside the
  // scheduler right now.
  std::uint32_t enabledMask() const {
    std::uint32_t M = 0;
    for (const auto &T : Threads) {
      bool En = false;
      switch (T->State) {
      case LogicalThread::St::Runnable:
        En = true;
        break;
      case LogicalThread::St::BlockedWord:
        En = T->WokenByNotify ||
             (T->WaitSample && T->WaitSample(T->WaitAddr) != T->WaitExpected) ||
             (T->TimedWait && Steps >= T->TimedWakeStep);
        break;
      case LogicalThread::St::BlockedJoin:
        En = Threads[T->JoinTarget]->State == LogicalThread::St::Done;
        break;
      case LogicalThread::St::Done:
        break;
      }
      if (En)
        M |= 1u << T->Tid;
    }
    return M;
  }

  // Mu held.
  void promote(LogicalThread &T) {
    if (T.State == LogicalThread::St::BlockedWord ||
        T.State == LogicalThread::St::BlockedJoin) {
      T.State = LogicalThread::St::Runnable;
      T.WokenByNotify = false;
      T.TimedWait = false;
    }
  }

  // Mu held. enabledMask(), but when nothing is enabled and timed waiters
  // exist, fast-forwards the step counter to the nearest modelled deadline
  // (virtual time advances when everyone sleeps) and recomputes. Only a
  // fully *untimed* blocked set is a real deadlock.
  std::uint32_t enabledMaskAdvancingTime() {
    std::uint32_t M = enabledMask();
    if (M)
      return M;
    bool Have = false;
    std::uint64_t Nearest = 0;
    for (const auto &T : Threads)
      if (T->State == LogicalThread::St::BlockedWord && T->TimedWait &&
          (!Have || T->TimedWakeStep < Nearest)) {
        Nearest = T->TimedWakeStep;
        Have = true;
      }
    if (!Have)
      return 0;
    if (Nearest > Steps)
      Steps = Nearest;
    return enabledMask();
  }

  /// Pure round-robin: the next enabled thread after Cur in cyclic order
  /// (possibly Cur itself when alone). Switch-first keeps truncated runs
  /// and the warmup free of spin-loop livelocks.
  unsigned serialChoose(std::uint32_t Mask, unsigned Cur) const {
    for (unsigned I = 1; I <= MaxThreads; ++I) {
      unsigned T = (Cur + I) % MaxThreads;
      if (Mask & (1u << T))
        return T;
    }
    return Cur;
  }

  unsigned dfsChoose(std::uint32_t Mask, unsigned Cur, bool CurEnabled,
                     bool Yield) {
    std::vector<unsigned> Cands;
    candidateOrder(Mask, Cur, CurEnabled, Yield, Cands);
    unsigned Idx = 0;
    if (Dfs.DecisionIdx < Dfs.Prefix.size()) {
      Idx = Dfs.Prefix[Dfs.DecisionIdx];
      if (Idx >= Cands.size()) // defensive: determinism violation
        Idx = static_cast<unsigned>(Cands.size()) - 1;
    }
    DfsFrame F;
    F.Mask = Mask;
    F.Cur = Cur;
    F.CurEnabled = CurEnabled;
    F.Yield = Yield;
    F.ChoiceIdx = Idx;
    F.PreemptionsBefore = Dfs.Preemptions;
    Dfs.Stack.push_back(F);
    Dfs.Preemptions += switchCost(F, Cands[Idx]);
    ++Dfs.DecisionIdx;
    return Cands[Idx];
  }

  unsigned randomChoose(std::uint32_t Mask, unsigned Cur, bool CurEnabled,
                        bool Yield) {
    std::vector<unsigned> Cands;
    candidateOrder(Mask, Cur, CurEnabled, Yield, Cands);
    return Cands[Rng.next() % Cands.size()];
  }

  unsigned pctChoose(std::uint32_t Mask, unsigned Cur, bool CurEnabled,
                     bool Yield) {
    // Priority-change points: when the step counter crosses the k-th
    // pre-drawn point, the *currently scheduled* thread drops to low
    // priority k, forcing a context switch at an adversarial depth.
    for (std::size_t K = 0; K < PctChange.size(); ++K)
      if (Steps == PctChange[K])
        PctPri[Cur] = K;
    std::vector<unsigned> Cands;
    candidateOrder(Mask, Cur, CurEnabled, Yield, Cands);
    unsigned Best = Cands[0];
    for (unsigned T : Cands)
      if (PctPri[T] > PctPri[Best])
        Best = T;
    return Best;
  }

  // Mu held.
  unsigned chooseNext(std::uint32_t Mask, unsigned Cur, bool CurEnabled,
                      bool Yield) {
    if (RunMode == Mode::Serial || TruncatedRun)
      return serialChoose(Mask, Cur);
    switch (Strat) {
    case Strategy::Dfs:
      return dfsChoose(Mask, Cur, CurEnabled, Yield);
    case Strategy::Random:
      return randomChoose(Mask, Cur, CurEnabled, Yield);
    case Strategy::Pct:
      return pctChoose(Mask, Cur, CurEnabled, Yield);
    }
    return serialChoose(Mask, Cur);
  }

  // Mu held (as L). Hands the gate to Next and parks until reactivated.
  // Never throws: an aborting run releases the parked thread to free-run.
  void handTo(std::unique_lock<std::mutex> &L, LogicalThread *Self,
              unsigned Next) {
    if (Next == Self->Tid)
      return;
    Active = static_cast<int>(Next);
    promote(*Threads[Next]);
    Cv.notify_all();
    Cv.wait(L, [&] {
      return Active == static_cast<int>(Self->Tid) ||
             Aborting.load(std::memory_order_relaxed);
    });
  }

  /// A plain schedule point (atomic access, yield, spawn). Returns false
  /// when the run is aborting and the caller is free-running.
  bool schedulePoint(LogicalThread *Self, const char *Op, const void *Addr,
                     std::uint64_t Arg, const char *File, int Line,
                     bool Yield) {
    std::unique_lock<std::mutex> L(Mu);
    if (Aborting.load(std::memory_order_relaxed))
      return false;
    recordEvent(Self->Tid, Op, Addr, Arg, File, Line);
    bumpStep();
    std::uint32_t Mask = enabledMask();
    unsigned Next = chooseNext(Mask, Self->Tid, /*CurEnabled=*/true, Yield);
    handTo(L, Self, Next);
    return true;
  }

  // Mu held. First failure wins; later ones (including the deadlock that
  // often follows a check failure) keep the original report. The report is
  // also staged into the async-signal-safe PendingReport buffer so a
  // subsequent assert/abort still dumps it (sites + clocks) to stderr.
  void fail(const std::string &Msg) {
    if (Failed)
      return;
    Failed = true;
    FailSeed = RunSeed;
    FailTrace = formatTrace();
    FailReport = buildReport(Msg);
    std::size_t N = FailReport.size();
    if (N > sizeof(PendingReport) - 2)
      N = sizeof(PendingReport) - 2;
    std::memcpy(PendingReport, FailReport.data(), N);
    PendingReport[N] = '\n';
    PendingReportLen = static_cast<int>(N + 1);
  }

  // ---- happens-before layer (DESIGN.md §11) ---------------------------

  // Mu held.
  WordHb &wordAt(unsigned Id) {
    if (Words.size() <= Id)
      Words.resize(Id + 1);
    return Words[Id];
  }

  // Mu held. Applies the HB effect of the access announced by the latest
  // preOp, now that it has executed: the word's *current* release clock is
  // the one the access observes. \p RmwApplied distinguishes a successful
  // CAS (an RMW at the success order) from a failed one (a load at the
  // failure order).
  void applyPendingHb(LogicalThread *Self, bool RmwApplied) {
    if (Self->PendKind == AccessKind::None)
      return;
    AccessKind K = Self->PendKind;
    std::memory_order O = Self->PendOk;
    if (K == AccessKind::Cas) {
      K = RmwApplied ? AccessKind::Rmw : AccessKind::Load;
      O = RmwApplied ? Self->PendOk : Self->PendFail;
    }
    unsigned Id = addrId(Self->PendAddr);
    WordHb &W = wordAt(Id);
    ThreadHb &H = Self->Hb;
    ++H.Clk.C[Self->Tid];
    if (K == AccessKind::Load || K == AccessKind::Rmw) {
      // Reader side: an acquire joins the word's release clock; a relaxed
      // load only *stages* it — a later acquire fence can still collect it.
      if (isAcquireOrder(O))
        H.Clk.join(W.Rel);
      else
        H.AcqPend.join(W.Rel);
    }
    if (K == AccessKind::Store || K == AccessKind::Rmw) {
      if (K == AccessKind::Store) {
        // A store heads a *new* release sequence: it publishes the
        // thread's clock if release, else whatever a preceding release
        // fence staged (nothing without one) — C++20 dropped plain stores
        // from the sequence they interrupt.
        if (isReleaseOrder(O))
          W.Rel = H.Clk;
        else
          W.Rel = H.RelFence;
      } else {
        // An RMW *continues* the release sequence: it joins rather than
        // replaces, so acquire readers still reach the original release.
        if (isReleaseOrder(O))
          W.Rel.join(H.Clk);
        else
          W.Rel.join(H.RelFence);
      }
      W.LastWriteTid = Self->Tid;
      W.LastWriteOp = Self->PendOp;
      W.LastWriteFile = Self->PendFile;
      W.LastWriteLine = Self->PendLine;
    }
    Self->PendKind = AccessKind::None;
  }

  // Mu held. FastTrack check+update for one plain access; fails the run
  // (when HbEnabled) on a conflicting access the caller's clock does not
  // cover. The SC interleaving saw a consistent value either way — the
  // *annotations* are what failed to order the pair.
  void plainHbCheck(LogicalThread *Self, const void *Addr, bool IsWrite,
                    const char *File, int Line) {
    unsigned Id = addrId(Addr);
    if (Plains.size() <= Id)
      Plains.resize(Id + 1);
    PlainHb &P = Plains[Id];
    ThreadHb &H = Self->Hb;
    unsigned Tid = Self->Tid;
    std::uint64_t Epoch = ++H.Clk.C[Tid];

    auto report = [&](const PlainAccess &PrevA, unsigned PrevTid,
                      const char *PrevOp) {
      if (!HbEnabled)
        return;
      RaceSite Prev{PrevTid, PrevOp, PrevA.File, PrevA.Line, PrevA.Epoch,
                    PrevA.Clk};
      RaceSite Cur{Tid, IsWrite ? "write" : "read", File, Line, Epoch,
                   H.Clk};
      fail(formatRace(Id, Prev, Cur));
    };

    // Any access conflicts with the last write by another thread.
    if (P.Write.Epoch && P.WriteTid != Tid &&
        !H.Clk.covers(P.WriteTid, P.Write.Epoch))
      report(P.Write, P.WriteTid, "write");
    if (IsWrite) {
      // A write additionally conflicts with every unordered read.
      for (unsigned T = 0; T < MaxThreads; ++T)
        if (T != Tid && P.Reads[T].Epoch && !H.Clk.covers(T, P.Reads[T].Epoch))
          report(P.Reads[T], T, "read");
      P.WriteTid = Tid;
      P.Write.Epoch = Epoch;
      P.Write.File = File ? File : "";
      P.Write.Line = Line;
      P.Write.Clk = H.Clk;
      // The write was ordered after every recorded read (or we reported);
      // future accesses ordered after it are ordered after them too.
      for (PlainAccess &R : P.Reads)
        R.Epoch = 0;
    } else {
      P.Reads[Tid].Epoch = Epoch;
      P.Reads[Tid].File = File ? File : "";
      P.Reads[Tid].Line = Line;
      P.Reads[Tid].Clk = H.Clk;
    }
  }

  /// Schedule point for a plain shared-data access. The access itself
  /// executes after this returns (the caller holds the gate again), so the
  /// race check runs *after* the handover, against the clocks the access
  /// really observes.
  void plainPoint(LogicalThread *Self, const void *Addr, bool IsWrite,
                  const char *File, int Line) {
    std::unique_lock<std::mutex> L(Mu);
    if (Aborting.load(std::memory_order_relaxed))
      return;
    recordEvent(Self->Tid, IsWrite ? "write" : "read", Addr, 0, File, Line);
    bumpStep();
    std::uint32_t Mask = enabledMask();
    unsigned Next = chooseNext(Mask, Self->Tid, /*CurEnabled=*/true,
                               /*Yield=*/false);
    handTo(L, Self, Next);
    if (Aborting.load(std::memory_order_relaxed))
      return;
    plainHbCheck(Self, Addr, IsWrite, File, Line);
  }

  /// Schedule point for an atomic thread fence.
  void fencePoint(LogicalThread *Self, std::memory_order O, const char *File,
                  int Line) {
    std::unique_lock<std::mutex> L(Mu);
    if (Aborting.load(std::memory_order_relaxed))
      return;
    recordEvent(Self->Tid, "fence", nullptr, (std::uint64_t)O, File, Line);
    bumpStep();
    std::uint32_t Mask = enabledMask();
    unsigned Next = chooseNext(Mask, Self->Tid, /*CurEnabled=*/true,
                               /*Yield=*/false);
    handTo(L, Self, Next);
    if (Aborting.load(std::memory_order_relaxed))
      return;
    ThreadHb &H = Self->Hb;
    ++H.Clk.C[Self->Tid];
    if (isAcquireOrder(O)) {
      // Collect what earlier relaxed loads staged: fence synchronization.
      H.Clk.join(H.AcqPend);
      H.AcqPend.clear();
    }
    if (isReleaseOrder(O))
      H.RelFence = H.Clk;
  }

  // Mu held. Classifies the stuck state: wait-for edges go from each
  // blocked thread to every live thread that ever touched its wake word
  // (it is the only population that *could* still store/notify there) or
  // to its join target. A cycle through those edges is the classic mutual
  // wait; a blocked thread with no live toucher at all can never be woken
  // — a lost wakeup.
  std::string classifyDeadlock() {
    char Buf[160];
    std::string Out;
    std::uint32_t Live = 0;
    for (const auto &T : Threads)
      if (T->State != LogicalThread::St::Done)
        Live |= 1u << T->Tid;
    std::uint32_t Edges[MaxThreads] = {};
    for (const auto &T : Threads) {
      if (T->State == LogicalThread::St::BlockedWord) {
        unsigned Id = addrId(T->WaitAddr);
        std::uint32_t Touch = Id < TouchedBy.size() ? TouchedBy[Id] : 0;
        Edges[T->Tid] = Touch & Live & ~(1u << T->Tid);
        if (!Edges[T->Tid]) {
          std::snprintf(Buf, sizeof(Buf),
                        "\n  lost wakeup: T%u blocked on a%u at %s:%d but "
                        "every other thread that ever touched a%u has exited",
                        T->Tid, Id, trimPath(T->WaitFile), T->WaitLine, Id);
          Out += Buf;
        }
      } else if (T->State == LogicalThread::St::BlockedJoin) {
        Edges[T->Tid] = (Live >> T->JoinTarget) & 1 ? 1u << T->JoinTarget : 0;
      }
    }
    // Find one cycle by coloring DFS (depth is bounded by MaxThreads).
    struct CycleFinder {
      const std::uint32_t *Edges;
      unsigned char Color[MaxThreads] = {}; // 0 white, 1 on path, 2 done
      unsigned Path[MaxThreads] = {};
      unsigned Depth = 0;
      unsigned CycleHead = ~0u;
      bool dfs(unsigned U) {
        Color[U] = 1;
        Path[Depth++] = U;
        for (unsigned V = 0; V < MaxThreads; ++V)
          if ((Edges[U] >> V) & 1) {
            if (Color[V] == 1) {
              CycleHead = V;
              return true;
            }
            if (Color[V] == 0 && dfs(V))
              return true;
          }
        --Depth;
        Color[U] = 2;
        return false;
      }
    } F{Edges};
    for (unsigned Start = 0; Start < Threads.size(); ++Start) {
      if (F.Color[Start] != 0 || !F.dfs(Start))
        continue;
      unsigned First = 0;
      while (F.Path[First] != F.CycleHead)
        ++First;
      Out += "\n  wait-for cycle:";
      for (unsigned I = First; I < F.Depth; ++I) {
        std::snprintf(Buf, sizeof(Buf), " T%u ->", F.Path[I]);
        Out += Buf;
      }
      std::snprintf(Buf, sizeof(Buf), " T%u", F.CycleHead);
      Out += Buf;
      for (unsigned I = First; I < F.Depth; ++I) {
        const LogicalThread &T = *Threads[F.Path[I]];
        if (T.State == LogicalThread::St::BlockedWord) {
          unsigned Id = addrId(T.WaitAddr);
          std::snprintf(Buf, sizeof(Buf), "\n    T%u blocked on a%u at %s:%d",
                        T.Tid, Id, trimPath(T.WaitFile), T.WaitLine);
        } else {
          std::snprintf(Buf, sizeof(Buf), "\n    T%u joining T%u", T.Tid,
                        T.JoinTarget);
        }
        Out += Buf;
      }
      break;
    }
    return Out;
  }

  // Mu held. No enabled thread but not everyone is Done: record, then
  // switch the run to the aborting free-run/unwind regime.
  void declareDeadlock() {
    std::string Msg = "deadlock: no logical thread is enabled (";
    char Buf[128];
    for (const auto &T : Threads) {
      const char *St = "runnable";
      switch (T->State) {
      case LogicalThread::St::BlockedWord:
        St = "blocked";
        break;
      case LogicalThread::St::BlockedJoin:
        St = "join";
        break;
      case LogicalThread::St::Done:
        St = "done";
        break;
      default:
        break;
      }
      std::snprintf(Buf, sizeof(Buf), "%sT%u=%s", T->Tid ? " " : "", T->Tid,
                    St);
      Msg += Buf;
      if (T->State == LogicalThread::St::BlockedWord && T->WaitFile[0]) {
        std::snprintf(Buf, sizeof(Buf), "@%s:%d", trimPath(T->WaitFile),
                      T->WaitLine);
        Msg += Buf;
      }
    }
    Msg += ")";
    Msg += classifyDeadlock();
    fail(Msg);
    Aborting.store(true, std::memory_order_relaxed);
    Cv.notify_all();
  }

  void blockOn(LogicalThread *Self, const void *Addr, std::uint64_t Expected,
               std::uint64_t (*Sample)(const void *), const char *File,
               int Line, bool Timed) {
    std::unique_lock<std::mutex> L(Mu);
    if (Aborting.load(std::memory_order_relaxed))
      return; // spurious return; caller re-checks and takes the real path
    recordEvent(Self->Tid, Timed ? "twait" : "wait", Addr, Expected, File,
                Line);
    bumpStep();
    if (Sample(Addr) != Expected) {
      // Would not block: still a schedule point, but stay enabled.
      std::uint32_t Mask = enabledMask();
      unsigned Next = chooseNext(Mask, Self->Tid, true, false);
      handTo(L, Self, Next);
      return;
    }
    Self->State = LogicalThread::St::BlockedWord;
    Self->WaitAddr = Addr;
    Self->WaitExpected = Expected;
    Self->WaitSample = Sample;
    Self->WokenByNotify = false;
    Self->TimedWait = Timed;
    Self->TimedWakeStep = Steps + TimedBlockBudget;
    Self->WaitFile = File ? File : "";
    Self->WaitLine = Line;
    std::uint32_t Mask = enabledMaskAdvancingTime();
    if (!Mask) {
      declareDeadlock();
      throw Aborted{};
    }
    // A time fast-forward can re-enable *us* (our own expiry was the
    // nearest); candidateOrder still prefers handing to somebody else.
    bool SelfEnabled = (Mask >> Self->Tid) & 1;
    unsigned Next = chooseNext(Mask, Self->Tid, SelfEnabled,
                               /*Yield=*/true);
    Active = static_cast<int>(Next);
    promote(*Threads[Next]);
    Cv.notify_all();
    Cv.wait(L, [&] {
      return Active == static_cast<int>(Self->Tid) ||
             Aborting.load(std::memory_order_relaxed);
    });
    if (Aborting.load(std::memory_order_relaxed) &&
        Active != static_cast<int>(Self->Tid))
      throw Aborted{}; // woken only to unwind
  }

  void wake(LogicalThread *Self, const void *Addr) {
    std::lock_guard<std::mutex> G(Mu);
    if (Aborting.load(std::memory_order_relaxed))
      return;
    recordEvent(Self->Tid, "notify", Addr, 0, "", 0);
    for (auto &T : Threads)
      if (T->State == LogicalThread::St::BlockedWord && T->WaitAddr == Addr)
        T->WokenByNotify = true;
  }

  void joinOn(LogicalThread *Self, unsigned Target) {
    std::unique_lock<std::mutex> L(Mu);
    if (Target >= Threads.size() || Target == Self->Tid)
      return;
    if (Aborting.load(std::memory_order_relaxed)) {
      // Free-run join: still wait for the logical thread to finish so the
      // caller can safely destroy state its body references.
      Cv.wait(L, [&] {
        return Threads[Target]->State == LogicalThread::St::Done;
      });
      return;
    }
    recordEvent(Self->Tid, "join", nullptr, Target, "", 0);
    bumpStep();
    if (Threads[Target]->State == LogicalThread::St::Done) {
      // Join edge: everything the finished thread did happens-before us.
      Self->Hb.Clk.join(Threads[Target]->Hb.Clk);
      std::uint32_t Mask = enabledMask();
      unsigned Next = chooseNext(Mask, Self->Tid, true, false);
      handTo(L, Self, Next);
      return;
    }
    Self->State = LogicalThread::St::BlockedJoin;
    Self->JoinTarget = Target;
    std::uint32_t Mask = enabledMaskAdvancingTime();
    if (!Mask) {
      declareDeadlock();
      throw Aborted{};
    }
    unsigned Next = chooseNext(Mask, Self->Tid, false, true);
    Active = static_cast<int>(Next);
    promote(*Threads[Next]);
    Cv.notify_all();
    Cv.wait(L, [&] {
      return Active == static_cast<int>(Self->Tid) ||
             Aborting.load(std::memory_order_relaxed);
    });
    if (Aborting.load(std::memory_order_relaxed) &&
        Active != static_cast<int>(Self->Tid))
      throw Aborted{};
    // Join edge (the target is Done or we would not have been promoted).
    Self->Hb.Clk.join(Threads[Target]->Hb.Clk);
  }

  void finishThread(LogicalThread *Self) {
    std::unique_lock<std::mutex> L(Mu);
    Self->State = LogicalThread::St::Done;
    bool All = true;
    for (const auto &T : Threads)
      All = All && T->State == LogicalThread::St::Done;
    if (All) {
      ExecDone = true;
      Cv.notify_all();
      return;
    }
    if (Aborting.load(std::memory_order_relaxed)) {
      Cv.notify_all(); // free-run joiners recheck Done states
      return;
    }
    recordEvent(Self->Tid, "exit", nullptr, 0, "", 0);
    bumpStep();
    std::uint32_t Mask = enabledMaskAdvancingTime();
    if (!Mask) {
      declareDeadlock();
      return; // we are exiting anyway; blocked victims unwind themselves
    }
    unsigned Next = chooseNext(Mask, Self->Tid, /*CurEnabled=*/false,
                               /*Yield=*/true);
    Active = static_cast<int>(Next);
    promote(*Threads[Next]);
    Cv.notify_all();
  }

  void trampoline(LogicalThread *LT) {
    TlsLT = LT;
    {
      std::unique_lock<std::mutex> L(Mu);
      Cv.wait(L, [&] {
        return Active == static_cast<int>(LT->Tid) ||
               Aborting.load(std::memory_order_relaxed);
      });
    }
    try {
      LT->Fn();
    } catch (const Aborted &) {
      // Expected unwind path of an aborting run.
    } catch (...) {
      std::lock_guard<std::mutex> G(Mu);
      fail("unexpected exception escaped a scenario thread");
    }
    // Release the EBR record while this logical thread still holds the
    // gate: the thread_local destructor would run after the handoff, so its
    // InUse release store would race the recycling thread in real time and
    // bypass the happens-before layer (the recycler would inherit a stale
    // clock and flag a false race on data the pin protected).
    ebr::quiesceThreadForTesting();
    finishThread(LT);
    TlsLT = nullptr;
  }

  /// One execution of the scenario under one choice sequence.
  void runOne(const std::function<void()> &Body, std::uint64_t SeedEnc,
              Mode M, std::uint64_t Payload) {
    Steps = 0;
    TruncatedRun = false;
    Ring.clear();
    RingPos = 0;
    LastSlot = 0;
    EventCount = 0;
    AddrIds.clear();
    Words.clear();
    Plains.clear();
    TouchedBy.clear();
    ExecDone = false;
    Aborting.store(false, std::memory_order_relaxed);
    Active = -1;
    RunMode = M;
    RunSeed = SeedEnc;
    AbortMsgLen = std::snprintf(
        AbortMsg, sizeof(AbortMsg),
        "\nschedcheck: execution aborted under the scheduler\n"
        "  seed   0x%016llx\n"
        "  replay re-run this test with CQS_SCHEDCHECK_SEED=0x%016llx\n",
        (unsigned long long)SeedEnc, (unsigned long long)SeedEnc);
    Dfs.beginRun();
    if (M == Mode::Strategy && Strat != Strategy::Dfs) {
      Rng.X = Payload ^ 0xcb24d0a5c88e37c1ull;
      if (Strat == Strategy::Pct) {
        for (unsigned I = 0; I < MaxThreads; ++I)
          PctPri[I] = 1000000 + (Rng.next() & 0xffffffffull);
        PctChange.clear();
        for (int K = 0; K + 1 < Opts.PctDepth; ++K)
          PctChange.push_back(1 + Rng.next() % (std::uint64_t)Opts.MaxSteps);
      }
    }
    {
      std::unique_lock<std::mutex> L(Mu);
      auto LT = std::make_unique<LogicalThread>();
      LT->Tid = 0;
      LT->Fn = Body;
      LogicalThread *P = LT.get();
      Threads.push_back(std::move(LT));
      P->Os = std::thread([this, P] { trampoline(P); });
      Active = 0;
      Cv.notify_all();
      Cv.wait(L, [&] { return ExecDone; });
    }
    for (auto &T : Threads)
      if (T->Os.joinable())
        T->Os.join();
    Threads.clear();
    ++Executions;
    // Hermetic reset: every execution must start from the same heap and
    // reclamation state or seeds would not replay.
    ebr::drainForTesting();
    pool::drainAllForTesting();
  }

  // ---- reporting ------------------------------------------------------

  // Mu held.
  std::string formatTrace() const {
    char Buf[256];
    std::string Out;
    std::size_t N = Ring.size();
    std::size_t Cap = Opts.TraceTail > 0 ? (std::size_t)Opts.TraceTail : 1;
    std::snprintf(Buf, sizeof(Buf), "  trace (last %zu of %llu events):\n", N,
                  (unsigned long long)EventCount);
    Out += Buf;
    std::size_t Start = N < Cap ? 0 : RingPos;
    for (std::size_t I = 0; I < N; ++I) {
      const Event &E = Ring[(Start + I) % N];
      std::snprintf(Buf, sizeof(Buf), "    #%-5llu T%u %-13s",
                    (unsigned long long)E.Idx, E.Tid, E.Op);
      Out += Buf;
      if (E.AddrId != ~0u) {
        std::snprintf(Buf, sizeof(Buf), " a%-3u", E.AddrId);
        Out += Buf;
      } else {
        Out += "     ";
      }
      if (E.File[0]) {
        std::snprintf(Buf, sizeof(Buf), " %s:%d", trimPath(E.File), E.Line);
        Out += Buf;
      }
      std::snprintf(Buf, sizeof(Buf), " arg=0x%llx",
                    (unsigned long long)E.Arg);
      Out += Buf;
      if (E.HasRes) {
        std::snprintf(Buf, sizeof(Buf), " -> 0x%llx",
                      (unsigned long long)E.Res);
        Out += Buf;
      }
      Out += "\n";
    }
    return Out;
  }

  // Mu held.
  std::string buildReport(const std::string &Msg) const {
    char Buf[256];
    std::string Out = "schedcheck FAILURE: " + Msg + "\n";
    std::uint64_t Payload = RunSeed & PayloadMask;
    char Desc[64];
    if (Payload == PayloadMask)
      std::snprintf(Desc, sizeof(Desc), "serial warmup");
    else if (Strat == Strategy::Dfs)
      std::snprintf(Desc, sizeof(Desc), "execution %llu",
                    (unsigned long long)Payload);
    else
      std::snprintf(Desc, sizeof(Desc), "run-seed 0x%llx",
                    (unsigned long long)Payload);
    std::snprintf(Buf, sizeof(Buf), "  seed   0x%016llx (strategy=%s, %s)\n",
                  (unsigned long long)RunSeed, stratName(Strat), Desc);
    Out += Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  replay re-run this test with "
                  "CQS_SCHEDCHECK_SEED=0x%016llx\n",
                  (unsigned long long)RunSeed);
    Out += Buf;
    Out += formatTrace();
    return Out;
  }
};

} // namespace

// ---------------------------------------------------------------------------
// Instrumentation hooks
// ---------------------------------------------------------------------------

void preOp(const void *Addr, const char *Op, std::uint64_t Arg,
           const char *File, int Line) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  Self->PendKind = AccessKind::None;
  R->schedulePoint(Self, Op, Addr, Arg, File, Line, /*Yield=*/false);
}

void preOp(const void *Addr, const char *Op, std::uint64_t Arg,
           const char *File, int Line, AccessKind Kind,
           std::memory_order Success, std::memory_order Failure) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  // Stash what the access contributes to happens-before; the matching
  // postOp applies it once the operation has executed (the word's release
  // clock may change while we are parked at this schedule point).
  Self->PendKind = Kind;
  Self->PendAddr = Addr;
  Self->PendOk = Success;
  Self->PendFail = Failure;
  Self->PendOp = Op;
  Self->PendFile = File ? File : "";
  Self->PendLine = Line;
  R->schedulePoint(Self, Op, Addr, Arg, File, Line, /*Yield=*/false);
}

void postOp(std::uint64_t Result) { postOp(Result, /*RmwApplied=*/true); }

void postOp(std::uint64_t Result, bool RmwApplied) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  std::lock_guard<std::mutex> G(R->Mu);
  if (R->Aborting.load(std::memory_order_relaxed) || R->Ring.empty()) {
    Self->PendKind = AccessKind::None;
    return;
  }
  R->applyPendingHb(Self, RmwApplied);
  // Serialized threads: the latest recorded event is this thread's preOp.
  Event &E = R->Ring[R->LastSlot];
  if (E.Tid == Self->Tid) {
    E.Res = Result;
    E.HasRes = true;
  }
}

void plainAccess(const void *Addr, bool IsWrite, const char *File, int Line) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->plainPoint(Self, Addr, IsWrite, File, Line);
}

void fence(std::memory_order Order, const char *File, int Line) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->fencePoint(Self, Order, File, Line);
}

void blockOnWord(const void *Addr, std::uint64_t Expected,
                 std::uint64_t (*Sample)(const void *), const char *File,
                 int Line) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->blockOn(Self, Addr, Expected, Sample, File, Line, /*Timed=*/false);
}

void blockOnWordTimed(const void *Addr, std::uint64_t Expected,
                      std::uint64_t (*Sample)(const void *), const char *File,
                      int Line) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->blockOn(Self, Addr, Expected, Sample, File, Line, /*Timed=*/true);
}

void wakeWord(const void *Addr) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->wake(Self, Addr);
}

void yield() {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self) {
    std::this_thread::yield();
    return;
  }
  if (!R->schedulePoint(Self, "yield", nullptr, 0, "", 0, /*Yield=*/true))
    std::this_thread::yield(); // aborting free-run: stay polite on one core
}

// ---------------------------------------------------------------------------
// Scenario API
// ---------------------------------------------------------------------------

Thread spawn(std::function<void()> Fn) {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self) {
    std::fprintf(stderr, "schedcheck: sc::spawn outside an explore() body\n");
    std::abort();
  }
  unsigned Tid;
  {
    std::lock_guard<std::mutex> G(R->Mu);
    Tid = static_cast<unsigned>(R->Threads.size());
    if (Tid >= MaxThreads) {
      std::fprintf(stderr, "schedcheck: more than %u logical threads\n",
                   MaxThreads);
      std::abort();
    }
    auto LT = std::make_unique<LogicalThread>();
    LT->Tid = Tid;
    LT->Fn = std::move(Fn);
    // Spawn edge: everything the parent did so far happens-before the
    // child; the parent then advances its epoch so its *later* accesses
    // stay concurrent with the child.
    LT->Hb.Clk = Self->Hb.Clk;
    ++Self->Hb.Clk.C[Self->Tid];
    LogicalThread *P = LT.get();
    R->Threads.push_back(std::move(LT));
    P->Os = std::thread([R, P] { R->trampoline(P); });
  }
  R->schedulePoint(Self, "spawn", nullptr, Tid, "", 0, /*Yield=*/false);
  Thread H;
  H.Tid = Tid;
  return H;
}

void Thread::join() {
  Run *R = GRun;
  LogicalThread *Self = TlsLT;
  if (!R || !Self)
    return;
  R->joinOn(Self, Tid);
}

bool check(bool Cond, const char *Msg) {
  if (Cond)
    return true;
  Run *R = GRun;
  if (R && TlsLT) {
    std::lock_guard<std::mutex> G(R->Mu);
    R->fail(std::string("check failed: ") + (Msg ? Msg : ""));
  }
  return false;
}

unsigned threadId() { return TlsLT ? TlsLT->Tid : ~0u; }

bool inModelledThread() {
  Run *R = GRun;
  return TlsLT != nullptr && R != nullptr &&
         !R->Aborting.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Exploration driver
// ---------------------------------------------------------------------------

std::uint64_t encodeSeed(Strategy S, std::uint64_t Payload) {
  return ((static_cast<std::uint64_t>(S) + 1) << 60) | (Payload & PayloadMask);
}

Options optionsFromEnv(Options Base) {
  if (const char *E = std::getenv("CQS_SCHEDCHECK_SEED"))
    Base.ReplaySeed = std::strtoull(E, nullptr, 0);
  if (const char *E = std::getenv("CQS_SCHEDCHECK_ITERS"))
    if (std::uint64_t V = std::strtoull(E, nullptr, 0))
      Base.Iterations = V;
  if (const char *E = std::getenv("CQS_SCHEDCHECK_STRATEGY")) {
    if (!std::strcmp(E, "dfs"))
      Base.Strat = Strategy::Dfs;
    else if (!std::strcmp(E, "random"))
      Base.Strat = Strategy::Random;
    else if (!std::strcmp(E, "pct"))
      Base.Strat = Strategy::Pct;
  }
  if (const char *E = std::getenv("CQS_SCHEDCHECK_HB"))
    Base.HbCheck = std::strtol(E, nullptr, 0) != 0;
  return Base;
}

Result explore(const Options &Base, const std::function<void()> &Body) {
  Options O = optionsFromEnv(Base);
  Result Res;
  if (GRun) {
    Res.Ok = false;
    Res.Report = "schedcheck: explore() is not reentrant";
    return Res;
  }
  Run R(O);
  GRun = &R;
  installAbortHook();
  bool Exhausted = false;

  auto finish = [&]() -> Result {
    uninstallAbortHook();
    GRun = nullptr;
    Res.Executions = R.Executions;
    Res.Truncated = R.TruncatedCount;
    Res.Exhausted = Exhausted && R.TruncatedCount == 0 && !R.Failed;
    if (R.Failed) {
      Res.Ok = false;
      Res.FailSeed = R.FailSeed;
      Res.Report = R.FailReport;
      Res.Trace = R.FailTrace;
    }
    return Res;
  };

  if (O.ReplaySeed) {
    Strategy S;
    std::uint64_t Payload;
    if (!decodeSeed(O.ReplaySeed, S, Payload)) {
      uninstallAbortHook();
      GRun = nullptr;
      Res.Ok = false;
      Res.Report = "schedcheck: malformed replay seed";
      return Res;
    }
    R.Strat = S;
    if (Payload == PayloadMask) { // the warmup itself failed originally
      R.runOne(Body, O.ReplaySeed, Mode::Serial, 0);
      return finish();
    }
    // The warmup stabilizes EBR/pool state exactly as the original
    // exploration did, so the replayed execution starts from the same
    // baseline.
    R.runOne(Body, encodeSeed(S, PayloadMask), Mode::Serial, 0);
    if (R.Failed)
      return finish();
    if (S == Strategy::Dfs) {
      // DFS seeds are execution indices: prefixes evolve run to run, so
      // march the enumeration forward to the target index.
      R.Dfs.Prefix.clear();
      for (std::uint64_t Idx = 0;; ++Idx) {
        R.runOne(Body, encodeSeed(S, Idx), Mode::Strategy, 0);
        if (R.Failed || Idx == Payload)
          return finish();
        if (!R.Dfs.nextPrefix(O.PreemptionBound))
          return finish(); // target index no longer reachable
      }
    }
    R.runOne(Body, O.ReplaySeed, Mode::Strategy, Payload);
    return finish();
  }

  // Serial warmup: catches single-interleaving bugs immediately and
  // stabilizes cross-execution state (EBR thread-record registry).
  R.runOne(Body, encodeSeed(R.Strat, PayloadMask), Mode::Serial, 0);
  if (R.Failed)
    return finish();

  switch (R.Strat) {
  case Strategy::Dfs: {
    R.Dfs.Prefix.clear();
    for (std::uint64_t Idx = 0;; ++Idx) {
      R.runOne(Body, encodeSeed(Strategy::Dfs, Idx), Mode::Strategy, 0);
      if (R.Failed)
        return finish();
      if (!R.Dfs.nextPrefix(O.PreemptionBound)) {
        Exhausted = true;
        return finish();
      }
      if (Idx + 1 >= O.Iterations)
        return finish(); // iteration cap; space not exhausted
    }
  }
  case Strategy::Random:
  case Strategy::Pct: {
    Mix64 Stream{O.Seed};
    for (std::uint64_t I = 0; I < O.Iterations; ++I) {
      std::uint64_t Payload = Stream.next() & PayloadMask;
      if (Payload == PayloadMask)
        Payload ^= 1; // keep the warmup sentinel unique
      R.runOne(Body, encodeSeed(R.Strat, Payload), Mode::Strategy, Payload);
      if (R.Failed)
        return finish();
    }
    return finish();
  }
  }
  return finish();
}

} // namespace sc
} // namespace cqs
