# Empty dependencies file for barrier_latch_test.
# This may be replaced when dependencies are built.
