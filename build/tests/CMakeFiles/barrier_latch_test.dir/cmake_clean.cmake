file(REMOVE_RECURSE
  "CMakeFiles/barrier_latch_test.dir/barrier_latch_test.cpp.o"
  "CMakeFiles/barrier_latch_test.dir/barrier_latch_test.cpp.o.d"
  "barrier_latch_test"
  "barrier_latch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_latch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
