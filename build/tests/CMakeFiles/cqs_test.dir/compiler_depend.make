# Empty compiler generated dependencies file for cqs_test.
# This may be replaced when dependencies are built.
