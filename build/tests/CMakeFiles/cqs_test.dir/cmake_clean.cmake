file(REMOVE_RECURSE
  "CMakeFiles/cqs_test.dir/cqs_test.cpp.o"
  "CMakeFiles/cqs_test.dir/cqs_test.cpp.o.d"
  "cqs_test"
  "cqs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
