# Empty dependencies file for sync_extras_test.
# This may be replaced when dependencies are built.
