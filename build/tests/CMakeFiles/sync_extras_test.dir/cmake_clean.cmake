file(REMOVE_RECURSE
  "CMakeFiles/sync_extras_test.dir/sync_extras_test.cpp.o"
  "CMakeFiles/sync_extras_test.dir/sync_extras_test.cpp.o.d"
  "sync_extras_test"
  "sync_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
