# Empty compiler generated dependencies file for cqs_cancellation_test.
# This may be replaced when dependencies are built.
