file(REMOVE_RECURSE
  "CMakeFiles/cqs_cancellation_test.dir/cqs_cancellation_test.cpp.o"
  "CMakeFiles/cqs_cancellation_test.dir/cqs_cancellation_test.cpp.o.d"
  "cqs_cancellation_test"
  "cqs_cancellation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqs_cancellation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
