# Empty dependencies file for stats_coverage_test.
# This may be replaced when dependencies are built.
