file(REMOVE_RECURSE
  "CMakeFiles/stats_coverage_test.dir/stats_coverage_test.cpp.o"
  "CMakeFiles/stats_coverage_test.dir/stats_coverage_test.cpp.o.d"
  "stats_coverage_test"
  "stats_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
