file(REMOVE_RECURSE
  "CMakeFiles/future_test.dir/future_test.cpp.o"
  "CMakeFiles/future_test.dir/future_test.cpp.o.d"
  "future_test"
  "future_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
