# Empty dependencies file for cqs.
# This may be replaced when dependencies are built.
