file(REMOVE_RECURSE
  "CMakeFiles/cqs.dir/reclaim/Ebr.cpp.o"
  "CMakeFiles/cqs.dir/reclaim/Ebr.cpp.o.d"
  "CMakeFiles/cqs.dir/task/Executor.cpp.o"
  "CMakeFiles/cqs.dir/task/Executor.cpp.o.d"
  "libcqs.a"
  "libcqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
