file(REMOVE_RECURSE
  "libcqs.a"
)
