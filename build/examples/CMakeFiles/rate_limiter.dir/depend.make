# Empty dependencies file for rate_limiter.
# This may be replaced when dependencies are built.
