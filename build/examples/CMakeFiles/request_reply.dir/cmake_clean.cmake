file(REMOVE_RECURSE
  "CMakeFiles/request_reply.dir/request_reply.cpp.o"
  "CMakeFiles/request_reply.dir/request_reply.cpp.o.d"
  "request_reply"
  "request_reply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/request_reply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
