# Empty dependencies file for request_reply.
# This may be replaced when dependencies are built.
