# Empty dependencies file for coroutine_pipeline.
# This may be replaced when dependencies are built.
