file(REMOVE_RECURSE
  "CMakeFiles/coroutine_pipeline.dir/coroutine_pipeline.cpp.o"
  "CMakeFiles/coroutine_pipeline.dir/coroutine_pipeline.cpp.o.d"
  "coroutine_pipeline"
  "coroutine_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coroutine_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
