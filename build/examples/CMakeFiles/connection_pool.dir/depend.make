# Empty dependencies file for connection_pool.
# This may be replaced when dependencies are built.
