file(REMOVE_RECURSE
  "CMakeFiles/connection_pool.dir/connection_pool.cpp.o"
  "CMakeFiles/connection_pool.dir/connection_pool.cpp.o.d"
  "connection_pool"
  "connection_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connection_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
