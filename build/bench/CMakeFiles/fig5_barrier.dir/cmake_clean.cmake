file(REMOVE_RECURSE
  "CMakeFiles/fig5_barrier.dir/fig5_barrier.cpp.o"
  "CMakeFiles/fig5_barrier.dir/fig5_barrier.cpp.o.d"
  "fig5_barrier"
  "fig5_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
