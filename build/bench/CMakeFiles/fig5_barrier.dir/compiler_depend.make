# Empty compiler generated dependencies file for fig5_barrier.
# This may be replaced when dependencies are built.
