file(REMOVE_RECURSE
  "CMakeFiles/fig14_semaphore_ext.dir/fig14_semaphore_ext.cpp.o"
  "CMakeFiles/fig14_semaphore_ext.dir/fig14_semaphore_ext.cpp.o.d"
  "fig14_semaphore_ext"
  "fig14_semaphore_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_semaphore_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
