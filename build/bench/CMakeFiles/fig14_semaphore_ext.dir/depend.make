# Empty dependencies file for fig14_semaphore_ext.
# This may be replaced when dependencies are built.
