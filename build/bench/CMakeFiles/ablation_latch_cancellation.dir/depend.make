# Empty dependencies file for ablation_latch_cancellation.
# This may be replaced when dependencies are built.
