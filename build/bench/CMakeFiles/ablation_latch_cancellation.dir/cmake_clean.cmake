file(REMOVE_RECURSE
  "CMakeFiles/ablation_latch_cancellation.dir/ablation_latch_cancellation.cpp.o"
  "CMakeFiles/ablation_latch_cancellation.dir/ablation_latch_cancellation.cpp.o.d"
  "ablation_latch_cancellation"
  "ablation_latch_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latch_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
