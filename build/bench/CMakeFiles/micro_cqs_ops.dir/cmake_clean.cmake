file(REMOVE_RECURSE
  "CMakeFiles/micro_cqs_ops.dir/micro_cqs_ops.cpp.o"
  "CMakeFiles/micro_cqs_ops.dir/micro_cqs_ops.cpp.o.d"
  "micro_cqs_ops"
  "micro_cqs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cqs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
