# Empty dependencies file for micro_cqs_ops.
# This may be replaced when dependencies are built.
