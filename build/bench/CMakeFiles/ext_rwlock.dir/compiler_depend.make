# Empty compiler generated dependencies file for ext_rwlock.
# This may be replaced when dependencies are built.
