file(REMOVE_RECURSE
  "CMakeFiles/ext_rwlock.dir/ext_rwlock.cpp.o"
  "CMakeFiles/ext_rwlock.dir/ext_rwlock.cpp.o.d"
  "ext_rwlock"
  "ext_rwlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rwlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
