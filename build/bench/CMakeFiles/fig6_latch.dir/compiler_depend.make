# Empty compiler generated dependencies file for fig6_latch.
# This may be replaced when dependencies are built.
