file(REMOVE_RECURSE
  "CMakeFiles/fig6_latch.dir/fig6_latch.cpp.o"
  "CMakeFiles/fig6_latch.dir/fig6_latch.cpp.o.d"
  "fig6_latch"
  "fig6_latch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_latch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
