# Empty compiler generated dependencies file for fig8_pools.
# This may be replaced when dependencies are built.
