file(REMOVE_RECURSE
  "CMakeFiles/fig8_pools.dir/fig8_pools.cpp.o"
  "CMakeFiles/fig8_pools.dir/fig8_pools.cpp.o.d"
  "fig8_pools"
  "fig8_pools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
