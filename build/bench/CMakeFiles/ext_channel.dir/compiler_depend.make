# Empty compiler generated dependencies file for ext_channel.
# This may be replaced when dependencies are built.
