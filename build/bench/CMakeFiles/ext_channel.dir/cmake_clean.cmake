file(REMOVE_RECURSE
  "CMakeFiles/ext_channel.dir/ext_channel.cpp.o"
  "CMakeFiles/ext_channel.dir/ext_channel.cpp.o.d"
  "ext_channel"
  "ext_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
