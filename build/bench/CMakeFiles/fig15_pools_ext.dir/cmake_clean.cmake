file(REMOVE_RECURSE
  "CMakeFiles/fig15_pools_ext.dir/fig15_pools_ext.cpp.o"
  "CMakeFiles/fig15_pools_ext.dir/fig15_pools_ext.cpp.o.d"
  "fig15_pools_ext"
  "fig15_pools_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_pools_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
