# Empty compiler generated dependencies file for fig15_pools_ext.
# This may be replaced when dependencies are built.
