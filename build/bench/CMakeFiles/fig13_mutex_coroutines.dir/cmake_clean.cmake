file(REMOVE_RECURSE
  "CMakeFiles/fig13_mutex_coroutines.dir/fig13_mutex_coroutines.cpp.o"
  "CMakeFiles/fig13_mutex_coroutines.dir/fig13_mutex_coroutines.cpp.o.d"
  "fig13_mutex_coroutines"
  "fig13_mutex_coroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mutex_coroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
