# Empty compiler generated dependencies file for fig13_mutex_coroutines.
# This may be replaced when dependencies are built.
