file(REMOVE_RECURSE
  "CMakeFiles/ext_fairness.dir/ext_fairness.cpp.o"
  "CMakeFiles/ext_fairness.dir/ext_fairness.cpp.o.d"
  "ext_fairness"
  "ext_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
