file(REMOVE_RECURSE
  "CMakeFiles/fig7_semaphore.dir/fig7_semaphore.cpp.o"
  "CMakeFiles/fig7_semaphore.dir/fig7_semaphore.cpp.o.d"
  "fig7_semaphore"
  "fig7_semaphore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_semaphore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
