# Empty dependencies file for fig7_semaphore.
# This may be replaced when dependencies are built.
