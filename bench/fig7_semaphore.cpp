//===- bench/fig7_semaphore.cpp - Figure 7: mutex & semaphore -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 7 of the paper: the CQS semaphore (async + sync resumption)
/// against Java's fair and unfair Semaphore/ReentrantLock (our AQS
/// re-implementation) and, in the mutex case, the classic CLH and MCS
/// locks. Lower is better.
///
//===----------------------------------------------------------------------===//

#include "SemaphoreBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main(int argc, char **argv) {
  Reporter R("fig7_semaphore",
             "semaphore/mutex: avg time per acquire-work-release operation, "
             "lower is better",
             argc, argv);
  SemTotalOps = R.ops(20000, 4000);
  banner("Figure 7", "semaphore/mutex: avg time per acquire-work-release "
                     "operation, lower is better");
  const std::vector<int> Threads =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  semaphoreSweep(R, 1, Threads);
  semaphoreSweep(R, 4, Threads);
  if (!R.quick())
    semaphoreSweep(R, 16, Threads);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
