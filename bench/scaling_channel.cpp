//===- bench/scaling_channel.cpp - burst-send channel scaling -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Contention-scaling curves for the channel (DESIGN.md §9): one producer
/// feeding N consumer threads, sending either one element per send()
/// protocol round or in sendBurst() chunks (one balance update plus one
/// batched receiver traversal per chunk). The sweep varies the consumer
/// count; the series difference isolates the batched-resume win on the
/// producer side. The v2 series repeat both producers on the single-array
/// channel, where a burst is one counter FAA per chunk instead of one
/// balance update per element.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"
#include "ScalingCommon.h"

#include "reclaim/Ebr.h"
#include "sync/Channel.h"
#include "sync/ChannelV2.h"

#include <cstdint>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

int TotalItems = 200000; // 20000 under --quick
constexpr std::int64_t Capacity = 64;
constexpr std::int64_t Burst = 32;
constexpr int Reps = 3;

/// One producer, \p Consumers receivers; \p UseBurst selects the batched
/// producer. Item count is fixed so the curve isolates consumer-side
/// contention and the per-send protocol cost.
template <typename Channel>
double channelRunOn(Channel &C, int Consumers, bool UseBurst) {
  const int PerConsumer = TotalItems / Consumers;
  const int Items = PerConsumer * Consumers;
  return runThreadTeam(Consumers + 1, [&](int T) {
    if (T == 0) {
      if (UseBurst) {
        std::uint32_t Buf[Burst];
        std::int64_t Sent = 0;
        while (Sent < Items) {
          std::int64_t N = std::min<std::int64_t>(Burst, Items - Sent);
          for (std::int64_t I = 0; I < N; ++I)
            Buf[I] = static_cast<std::uint32_t>(Sent + I);
          C.sendBurst(Buf, N);
          Sent += N;
        }
      } else {
        for (std::int64_t I = 0; I < Items; ++I) {
          auto F = C.send(static_cast<std::uint32_t>(I));
          if (!F.isImmediate())
            (void)F.blockingGet();
        }
      }
      return;
    }
    for (int I = 0; I < PerConsumer; ++I) {
      auto F = C.receive();
      if (!F.isImmediate())
        (void)F.blockingGet();
    }
  });
}

double channelRun(int Consumers, bool UseBurst) {
  BufferedChannel<std::uint32_t> C(Capacity);
  return channelRunOn(C, Consumers, UseBurst);
}

double channelV2Run(int Consumers, bool UseBurst) {
  BufferedChannelV2<std::uint32_t> C(Capacity);
  return channelRunOn(C, Consumers, UseBurst);
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("scaling_channel",
             "channel burst scaling: per-send protocol vs sendBurst; avg "
             "time per item, lower is better",
             argc, argv);
  TotalItems = R.ops(200000, 20000);
  banner("Scaling: channel", "send loop vs sendBurst, 1 producer");
  const std::vector<int> ThreadCounts = scalingThreadCounts(R.quick());
  R.context("capacity=" + std::to_string(Capacity) +
            ",burst=" + std::to_string(Burst));
  Table T({"consumers", "send loop", "sendBurst", "v2 send loop",
           "v2 sendBurst"});
  for (int Consumers : ThreadCounts) {
    const int Items = (TotalItems / Consumers) * Consumers;
    const double Scale = 1e6 / static_cast<double>(Items); // us per item
    // Recorded thread count is the real team size (consumers + the
    // producer), so bench_compare's oversubscription check sees actual
    // concurrency, not just the swept parameter.
    T.cell(std::to_string(Consumers));
    T.cell(R.measure("send loop", Consumers + 1, "us/item", Scale, Reps,
                     [&] { return channelRun(Consumers, false); }));
    T.cell(R.measure("sendBurst", Consumers + 1, "us/item", Scale, Reps,
                     [&] { return channelRun(Consumers, true); }));
    T.cell(R.measure("v2 send loop", Consumers + 1, "us/item", Scale, Reps,
                     [&] { return channelV2Run(Consumers, false); }));
    T.cell(R.measure("v2 sendBurst", Consumers + 1, "us/item", Scale, Reps,
                     [&] { return channelV2Run(Consumers, true); }));
    T.endRow();
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
