//===- bench/fig13_mutex_coroutines.cpp - Figure 13: coroutine mutex ------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 13 (Appendix F.3): many coroutines (far more than scheduler
/// threads) hammer a mutex; the CQS-based mutex (async and sync resumption)
/// is compared against the pre-CQS Kotlin-style mutex (CAS state + linked
/// waiter queue). Work before the acquisition and under the lock is 100
/// uncontended iterations each. Reported: total time plus the speedup of
/// each CQS variant over the legacy mutex (higher speedup is better).
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/LegacyMutex.h"
#include "reclaim/Ebr.h"
#include "support/WaitGroup.h"
#include "support/Work.h"
#include "sync/Mutex.h"
#include "task/Awaitable.h"
#include "task/Executor.h"
#include "task/Task.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr std::uint64_t WorkMean = 100;
constexpr int Reps = 3;

/// One coroutine: repeat (prep work; lock; work; unlock).
template <typename MutexT>
FireAndForget mutexTask(MutexT &M, int Ops, int Seed, WaitGroup &Wg) {
  GeometricWork Prep(WorkMean, 17 + Seed);
  GeometricWork Critical(WorkMean, 43 + Seed);
  for (int I = 0; I < Ops; ++I) {
    Prep.run();
    auto Grant = co_await awaitFuture(M.lock());
    (void)Grant;
    Critical.run();
    M.unlock();
  }
  Wg.done();
}

template <typename MutexT>
double coroutineMutexRun(int SchedulerThreads, int Coroutines,
                         int OpsPerCoroutine) {
  Executor Exec(SchedulerThreads);
  MutexT M;
  WaitGroup Wg(Coroutines);
  auto Start = std::chrono::steady_clock::now();
  for (int C = 0; C < Coroutines; ++C)
    mutexTask(M, OpsPerCoroutine, C, Wg).spawn(Exec);
  Wg.wait();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// CQS mutex with a fixed resumption mode, defaulted per instantiation.
struct AsyncCqsMutex : Mutex {
  AsyncCqsMutex() : Mutex(ResumptionMode::Async) {}
};
struct SyncCqsMutex : Mutex {
  SyncCqsMutex() : Mutex(ResumptionMode::Sync) {}
};

void runSweep(Reporter &R, int Coroutines, int OpsPerCoroutine) {
  std::printf("\n-- %d coroutines x %d lock/unlock ops --\n", Coroutines,
              OpsPerCoroutine);
  R.context("coroutines=" + std::to_string(Coroutines) +
            ",ops=" + std::to_string(OpsPerCoroutine));
  Table T({"sched threads", "Legacy ms", "CQS async ms", "CQS sync ms",
           "speedup async", "speedup sync"});
  const std::vector<int> SchedThreads =
      R.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  for (int Threads : SchedThreads) {
    double Legacy = R.measure("Legacy", Threads, "ms/run", 1e3, Reps, [&] {
      return coroutineMutexRun<LegacyCoroutineMutex>(Threads, Coroutines,
                                                     OpsPerCoroutine);
    });
    double Async = R.measure("CQS async", Threads, "ms/run", 1e3, Reps, [&] {
      return coroutineMutexRun<AsyncCqsMutex>(Threads, Coroutines,
                                              OpsPerCoroutine);
    });
    double Sync = R.measure("CQS sync", Threads, "ms/run", 1e3, Reps, [&] {
      return coroutineMutexRun<SyncCqsMutex>(Threads, Coroutines,
                                             OpsPerCoroutine);
    });
    R.record("speedup async", Threads, "x", "higher", Legacy / Async);
    R.record("speedup sync", Threads, "x", "higher", Legacy / Sync);
    T.cell(std::to_string(Threads));
    T.cell(Legacy);
    T.cell(Async);
    T.cell(Sync);
    T.cell(Legacy / Async);
    T.cell(Legacy / Sync);
    T.endRow();
  }
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("fig13_mutex_coroutines",
             "mutex under coroutines: CQS vs pre-CQS Kotlin-style mutex; "
             "speedup > 1 means CQS wins",
             argc, argv);
  banner("Figure 13", "mutex under coroutines: CQS vs pre-CQS Kotlin-style "
                      "mutex; speedup > 1 means CQS wins");
  if (R.quick()) {
    runSweep(R, /*Coroutines=*/200, /*OpsPerCoroutine=*/5);
  } else {
    runSweep(R, /*Coroutines=*/1000, /*OpsPerCoroutine=*/20);
    runSweep(R, /*Coroutines=*/10000, /*OpsPerCoroutine=*/2);
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
