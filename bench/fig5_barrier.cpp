//===- bench/fig5_barrier.cpp - Figure 5: barrier comparison --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 5 of the paper: N threads repeatedly synchronize at a barrier,
/// each arrival preceded by geometrically distributed uncontended work
/// (mean 100 and 1000 iterations). Reported: average time per
/// synchronization phase (microseconds), lower is better. Series:
///   - CQS        — the Listing 6 barrier (one single-use barrier per
///                  phase, pre-allocated outside the timed region);
///   - Java       — CyclicBarrier equivalent (mutex + condvar);
///   - Counter    — spinning counter baseline.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "baseline/CyclicBarrier.h"
#include "baseline/SpinBarrier.h"
#include "reclaim/Ebr.h"
#include "support/Work.h"
#include "sync/Barrier.h"
#include "sync/CyclicBarrierCqs.h"

#include <memory>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr int Phases = 200;
constexpr int Reps = 3;

double cqsBarrierPhases(int Threads, std::uint64_t WorkMean) {
  // The CQS barrier is single-use (Listing 6); pre-create one per phase.
  std::vector<std::unique_ptr<Barrier>> Bs;
  Bs.reserve(Phases);
  for (int P = 0; P < Phases; ++P)
    Bs.push_back(std::make_unique<Barrier>(Threads));
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      auto F = Bs[P]->arrive();
      (void)F.blockingGet();
    }
  });
}

double cqsCyclicBarrierPhases(int Threads, std::uint64_t WorkMean) {
  CyclicCqsBarrier B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

double javaBarrierPhases(int Threads, std::uint64_t WorkMean) {
  CyclicBarrierBaseline B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

double counterBarrierPhases(int Threads, std::uint64_t WorkMean) {
  SpinBarrier B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

void runSweep(std::uint64_t WorkMean) {
  std::printf("\n-- work mean = %llu uncontended loop iterations --\n",
              static_cast<unsigned long long>(WorkMean));
  Table T({"threads", "CQS us", "CQS cyclic us", "Java us", "Counter us"});
  for (int Threads : {1, 2, 4, 8, 16}) {
    T.cell(std::to_string(Threads));
    T.cell(1e6 *
           medianOfReps(Reps,
                        [&] { return cqsBarrierPhases(Threads, WorkMean); }) /
           Phases);
    T.cell(1e6 * medianOfReps(Reps, [&] {
             return cqsCyclicBarrierPhases(Threads, WorkMean);
           }) / Phases);
    T.cell(1e6 *
           medianOfReps(Reps,
                        [&] { return javaBarrierPhases(Threads, WorkMean); }) /
           Phases);
    T.cell(1e6 * medianOfReps(Reps, [&] {
             return counterBarrierPhases(Threads, WorkMean);
           }) / Phases);
    T.endRow();
  }
}

} // namespace

int main() {
  banner("Figure 5", "barrier: avg time per synchronization phase, lower "
                     "is better");
  runSweep(100);
  runSweep(1000);
  ebr::drainForTesting();
  return 0;
}
