//===- bench/fig5_barrier.cpp - Figure 5: barrier comparison --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 5 of the paper: N threads repeatedly synchronize at a barrier,
/// each arrival preceded by geometrically distributed uncontended work
/// (mean 100 and 1000 iterations). Reported: average time per
/// synchronization phase (microseconds), lower is better. Series:
///   - CQS        — the Listing 6 barrier (one single-use barrier per
///                  phase, pre-allocated outside the timed region);
///   - Java       — CyclicBarrier equivalent (mutex + condvar);
///   - Counter    — spinning counter baseline.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/CyclicBarrier.h"
#include "baseline/SpinBarrier.h"
#include "reclaim/Ebr.h"
#include "support/Work.h"
#include "sync/Barrier.h"
#include "sync/CyclicBarrierCqs.h"

#include <memory>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr int Reps = 3;
int Phases = 200; // 40 under --quick

double cqsBarrierPhases(int Threads, std::uint64_t WorkMean) {
  // The CQS barrier is single-use (Listing 6); pre-create one per phase.
  std::vector<std::unique_ptr<Barrier>> Bs;
  Bs.reserve(Phases);
  for (int P = 0; P < Phases; ++P)
    Bs.push_back(std::make_unique<Barrier>(Threads));
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      auto F = Bs[P]->arrive();
      (void)F.blockingGet();
    }
  });
}

double cqsCyclicBarrierPhases(int Threads, std::uint64_t WorkMean) {
  CyclicCqsBarrier B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

double javaBarrierPhases(int Threads, std::uint64_t WorkMean) {
  CyclicBarrierBaseline B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

double counterBarrierPhases(int Threads, std::uint64_t WorkMean) {
  SpinBarrier B(Threads);
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 1234 + T);
    for (int P = 0; P < Phases; ++P) {
      Work.run();
      B.arriveAndWait();
    }
  });
}

void runSweep(Reporter &R, std::uint64_t WorkMean) {
  std::printf("\n-- work mean = %llu uncontended loop iterations --\n",
              static_cast<unsigned long long>(WorkMean));
  R.context("workMean=" + std::to_string(WorkMean));
  const double Scale = 1e6 / Phases; // us per synchronization phase
  Table T({"threads", "CQS us", "CQS cyclic us", "Java us", "Counter us"});
  const std::vector<int> ThreadCounts =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  for (int Threads : ThreadCounts) {
    T.cell(std::to_string(Threads));
    T.cell(R.measure("CQS", Threads, "us/phase", Scale, Reps,
                     [&] { return cqsBarrierPhases(Threads, WorkMean); }));
    T.cell(R.measure("CQS cyclic", Threads, "us/phase", Scale, Reps, [&] {
      return cqsCyclicBarrierPhases(Threads, WorkMean);
    }));
    T.cell(R.measure("Java", Threads, "us/phase", Scale, Reps,
                     [&] { return javaBarrierPhases(Threads, WorkMean); }));
    T.cell(R.measure("Counter", Threads, "us/phase", Scale, Reps, [&] {
      return counterBarrierPhases(Threads, WorkMean);
    }));
    T.endRow();
  }
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("fig5_barrier",
             "barrier: avg time per synchronization phase, lower is better",
             argc, argv);
  Phases = R.ops(200, 40);
  banner("Figure 5", "barrier: avg time per synchronization phase, lower "
                     "is better");
  runSweep(R, 100);
  if (!R.quick())
    runSweep(R, 1000);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
