//===- bench/scaling_rwmutex.cpp - read-heavy rw lock scaling -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Contention-scaling curves for the read path (DESIGN.md §9): a
/// read-heavy mix over the paper-faithful CQS RwMutex (one shared
/// counter), the striped variant (per-stripe reader counts, writers
/// sweep), and std::shared_mutex for platform context. The striped curve
/// should stay flat as reader threads grow; the shared-counter curves
/// climb with the cacheline ping-pong the stripes remove.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"
#include "ScalingCommon.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "support/Work.h"
#include "sync/RwMutex.h"
#include "sync/StripedRwMutex.h"

#include <shared_mutex>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

int TotalOps = 200000; // 20000 under --quick
constexpr std::uint64_t WorkMean = 50;
constexpr int Reps = 3;

template <typename ReadFn, typename WriteFn>
double rwWorkload(int Threads, int WritePercent, ReadFn Read, WriteFn Write) {
  const int PerThread = TotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    SplitMix64 Rng(211 + T);
    GeometricWork Work(WorkMean, 89 + T);
    for (int I = 0; I < PerThread; ++I) {
      if (Rng.chance(WritePercent, 100))
        Write(Work);
      else
        Read(Work);
    }
  });
}

double cqsRwRun(int Threads, int WritePercent) {
  RwMutex Rw;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        (void)Rw.readLock().blockingGet();
        W.run();
        Rw.readUnlock();
      },
      [&](GeometricWork &W) {
        (void)Rw.writeLock().blockingGet();
        W.run();
        Rw.writeUnlock();
      });
}

double stripedRun(int Threads, int WritePercent) {
  StripedRwMutex Rw;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        Rw.lockShared();
        W.run();
        Rw.unlockShared();
      },
      [&](GeometricWork &W) {
        Rw.lock();
        W.run();
        Rw.unlock();
      });
}

double sharedMutexRun(int Threads, int WritePercent) {
  std::shared_mutex M;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        std::shared_lock<std::shared_mutex> L(M);
        W.run();
      },
      [&](GeometricWork &W) {
        std::unique_lock<std::shared_mutex> L(M);
        W.run();
      });
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("scaling_rwmutex",
             "read-heavy rw lock scaling: shared counter vs striped "
             "readers; avg time per op, lower is better",
             argc, argv);
  TotalOps = R.ops(200000, 20000);
  banner("Scaling: rw lock", "read-heavy mixes, striped vs shared counter");
  const std::vector<int> ThreadCounts = scalingThreadCounts(R.quick());
  const std::vector<int> WriteMixes =
      R.quick() ? std::vector<int>{2} : std::vector<int>{0, 2, 10};
  const double Scale = 1e6 / TotalOps; // us per operation
  for (int WritePercent : WriteMixes) {
    std::printf("\n-- %d%% writes --\n", WritePercent);
    R.context("writes=" + std::to_string(WritePercent) +
              "%,work=" + std::to_string(WorkMean));
    Table T({"threads", "CQS RwMutex", "Striped RwMutex",
             "std::shared_mutex"});
    for (int Threads : ThreadCounts) {
      T.cell(std::to_string(Threads));
      T.cell(R.measure("CQS RwMutex", Threads, "us/op", Scale, Reps,
                       [&] { return cqsRwRun(Threads, WritePercent); }));
      T.cell(R.measure("Striped RwMutex", Threads, "us/op", Scale, Reps,
                       [&] { return stripedRun(Threads, WritePercent); }));
      T.cell(R.measure("std::shared_mutex", Threads, "us/op", Scale, Reps,
                       [&] { return sharedMutexRun(Threads, WritePercent); }));
      T.endRow();
    }
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
