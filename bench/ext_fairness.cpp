//===- bench/ext_fairness.cpp - extension: measuring fairness itself ------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The paper's evaluation measures throughput; fairness — the property the
/// whole design pays for — is asserted by construction. This extension
/// quantifies it: N threads hammer one mutex for a fixed wall-clock
/// window, and we report
///
///   - Jain's fairness index of per-thread acquisition counts
///     ((sum x)^2 / (n * sum x^2); 1.0 = perfectly fair, 1/n = one thread
///     monopolized the lock);
///   - the longest monopolization burst (consecutive acquisitions by one
///     thread while others were demonstrably waiting).
///
/// Series: the fair CQS mutex, the fair AQS lock, the unfair (barging)
/// AQS lock, and the CLH spin lock. The expected shape: fair designs sit
/// near index 1.0 with short bursts; the barging lock shows long bursts —
/// the throughput it wins in Figure 7 is bought with exactly this.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/Aqs.h"
#include "baseline/ClhLock.h"
#include "reclaim/Ebr.h"
#include "sync/Mutex.h"

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr int Threads = 8;
std::chrono::milliseconds Window(300); // 50ms under --quick

struct FairnessResult {
  double JainIndex;
  long LongestBurst;
  long TotalAcquisitions;
};

template <typename LockFn, typename UnlockFn>
FairnessResult measure(LockFn Lock, UnlockFn Unlock) {
  std::vector<long> Counts(Threads, 0);
  std::atomic<int> LastOwner{-1};
  std::atomic<long> Burst{0}, LongestBurst{0};
  std::atomic<int> Waiters{0};
  std::atomic<bool> Stop{false};

  double Seconds = runThreadTeam(Threads, [&](int T) {
    if (T == 0) {
      std::this_thread::sleep_for(Window);
      Stop.store(true);
      return;
    }
    int Me = T; // thread 0 is the timer
    while (!Stop.load(std::memory_order_acquire)) {
      Waiters.fetch_add(1);
      Lock();
      Waiters.fetch_sub(1);
      ++Counts[Me];
      // Burst accounting: consecutive acquisitions by one thread while
      // at least one other thread was waiting.
      if (LastOwner.load(std::memory_order_relaxed) == Me &&
          Waiters.load(std::memory_order_relaxed) > 0) {
        long B = Burst.fetch_add(1) + 1;
        long L = LongestBurst.load(std::memory_order_relaxed);
        while (B > L && !LongestBurst.compare_exchange_weak(L, B)) {
        }
      } else {
        LastOwner.store(Me, std::memory_order_relaxed);
        Burst.store(1, std::memory_order_relaxed);
      }
      Unlock();
    }
  });
  (void)Seconds;

  double Sum = 0, SumSq = 0;
  long Total = 0;
  int Workers = 0;
  for (int T = 1; T < Threads; ++T) {
    Sum += static_cast<double>(Counts[T]);
    SumSq += static_cast<double>(Counts[T]) * static_cast<double>(Counts[T]);
    Total += Counts[T];
    ++Workers;
  }
  double Jain = SumSq > 0 ? (Sum * Sum) / (Workers * SumSq) : 0;
  return {Jain, LongestBurst.load(), Total};
}

/// Runs one lock's fairness window, prints its table row, and records
/// the three metrics (with attributed CqsStats deltas) into the JSON
/// report. Direction matters per metric: fairness index and throughput
/// are higher-is-better, the monopolization burst is lower-is-better.
template <typename LockFn, typename UnlockFn>
void runSeries(Reporter &Rep, Table &T, const char *Name, LockFn Lock,
               UnlockFn Unlock) {
  CqsStatsSnapshot Before = CqsStats::processSnapshot();
  FairnessResult R = measure(Lock, Unlock);
  CqsStatsSnapshot Delta = CqsStats::processSnapshot() - Before;
  T.cell(Name);
  T.cell(R.JainIndex);
  T.cell(static_cast<double>(R.LongestBurst));
  T.cell(static_cast<double>(R.TotalAcquisitions));
  T.endRow();
  // All three metrics are diagnostics, not gates: the Jain index and the
  // burst lengths conflate lock fairness with OS scheduling quanta when
  // the host has fewer cores than threads, and raw acquisition counts
  // are pure throughput luck. Fairness *properties* are asserted by the
  // tier-1 tests; this bench quantifies them for human reading.
  Rep.record(std::string(Name) + " Jain", Threads, "index", "higher",
             R.JainIndex, Delta, /*Gated=*/false);
  Rep.record(std::string(Name) + " burst", Threads, "acquisitions", "lower",
             static_cast<double>(R.LongestBurst), Delta, /*Gated=*/false);
  Rep.record(std::string(Name) + " acqs", Threads, "acquisitions", "higher",
             static_cast<double>(R.TotalAcquisitions), Delta,
             /*Gated=*/false);
}

} // namespace

int main(int argc, char **argv) {
  Reporter Rep("ext_fairness",
               "Jain index of per-thread acquisitions (1.0 = fair) and "
               "longest monopolization burst while others waited",
               argc, argv);
  if (Rep.quick())
    Window = std::chrono::milliseconds(50);
  Rep.context("window=" + std::to_string(Window.count()) + "ms");
  banner("Extension: fairness", "Jain index of per-thread acquisitions "
                                "(1.0 = fair) and longest monopolization "
                                "burst while others waited");
  Table T({"lock", "Jain index", "longest burst", "total acqs"});

  {
    Mutex M;
    runSeries(Rep, T, "CQS fair", [&] { (void)M.lock().blockingGet(); },
              [&] { M.unlock(); });
  }
  {
    AqsLock L(/*Fair=*/true);
    runSeries(Rep, T, "AQS fair", [&] { L.lock(); }, [&] { L.unlock(); });
  }
  {
    AqsLock L(/*Fair=*/false);
    runSeries(Rep, T, "AQS unfair", [&] { L.lock(); }, [&] { L.unlock(); });
  }
  {
    ClhLock L;
    runSeries(Rep, T, "CLH", [&] { L.lock(); }, [&] { L.unlock(); });
  }
  Rep.finish();
  ebr::drainForTesting();
  return 0;
}
