//===- bench/ScalingCommon.h - shared thread-sweep for scaling curves -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread-count sweep shared by the scaling_* benches (DESIGN.md §9,
/// EXPERIMENTS.md "scaling curves"). The floor {1, 2, 4} is fixed so the
/// committed baseline and the CI runner always share series keys — the
/// regression gate (tools/bench_compare.py --scaling) compares curves
/// point-by-point and only gates thread counts at or below the baseline
/// host's core count (the "flat region"); points above it are
/// oversubscribed and reported ungated.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BENCH_SCALINGCOMMON_H
#define CQS_BENCH_SCALINGCOMMON_H

#include <thread>
#include <vector>

namespace cqs {
namespace bench {

/// Thread counts for a scaling sweep: always {1, 2, 4}; full (non-quick)
/// mode extends by powers of two up to the host's core count, plus the
/// core count itself when it is not a power of two.
inline std::vector<int> scalingThreadCounts(bool Quick) {
  std::vector<int> Ts = {1, 2, 4};
  if (Quick)
    return Ts;
  const int N = static_cast<int>(std::thread::hardware_concurrency());
  for (int T = 8; T <= N; T *= 2)
    Ts.push_back(T);
  if (N > 4 && Ts.back() != N)
    Ts.push_back(N);
  return Ts;
}

} // namespace bench
} // namespace cqs

#endif // CQS_BENCH_SCALINGCOMMON_H
