//===- bench/fig8_pools.cpp - Figure 8: blocking pools --------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 8 of the paper: the queue- and stack-based CQS pools against the
/// fair/unfair ArrayBlockingQueue and the LinkedBlockingQueue. Lower is
/// better.
///
//===----------------------------------------------------------------------===//

#include "PoolBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main() {
  banner("Figure 8", "blocking pools: avg time per take-work-put operation, "
                     "lower is better");
  const std::vector<int> Threads = {1, 2, 4, 8, 16};
  poolSweep(1, Threads);
  poolSweep(4, Threads);
  poolSweep(16, Threads);
  ebr::drainForTesting();
  return 0;
}
