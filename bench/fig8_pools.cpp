//===- bench/fig8_pools.cpp - Figure 8: blocking pools --------------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 8 of the paper: the queue- and stack-based CQS pools against the
/// fair/unfair ArrayBlockingQueue and the LinkedBlockingQueue. Lower is
/// better.
///
//===----------------------------------------------------------------------===//

#include "PoolBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main(int argc, char **argv) {
  Reporter R("fig8_pools",
             "blocking pools: avg time per take-work-put operation, lower "
             "is better",
             argc, argv);
  PoolTotalOps = R.ops(20000, 4000);
  banner("Figure 8", "blocking pools: avg time per take-work-put operation, "
                     "lower is better");
  const std::vector<int> Threads =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  poolSweep(R, 1, Threads);
  poolSweep(R, 4, Threads);
  if (!R.quick())
    poolSweep(R, 16, Threads);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
