//===- bench/Harness.h - phase-benchmark harness ---------------*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the figure-reproduction benchmarks: a thread team
/// with a synchronized start, warmup + median-of-repetitions measurement
/// (replicating JMH's protocol in miniature, DESIGN.md §3), and a plain
/// fixed-width table printer so each binary emits the rows/series of its
/// paper figure.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BENCH_HARNESS_H
#define CQS_BENCH_HARNESS_H

#include "support/Backoff.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace cqs {
namespace bench {

/// Runs \p Body(threadIndex) on \p Threads threads with a synchronized
/// start; returns the wall-clock seconds from release to last completion.
inline double runThreadTeam(int Threads,
                            const std::function<void(int)> &Body) {
  std::atomic<int> Ready{0};
  std::atomic<bool> Go{false};
  std::vector<std::thread> Ts;
  Ts.reserve(Threads);
  for (int T = 0; T < Threads; ++T) {
    Ts.emplace_back([&, T] {
      Ready.fetch_add(1);
      Backoff B;
      while (!Go.load(std::memory_order_acquire))
        B.pause();
      Body(T);
    });
  }
  Backoff B;
  while (Ready.load() != Threads)
    B.pause();
  auto Start = std::chrono::steady_clock::now();
  Go.store(true, std::memory_order_release);
  for (auto &T : Ts)
    T.join();
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

/// All repetitions of one measured cell plus the derived statistics the
/// JSON schema reports (tools/bench_compare.py keys off Median but the
/// full sample set travels with it, per EXPERIMENTS.md's noise notes).
struct SampleSet {
  std::vector<double> Samples; // in reported units, measurement order
  double Median = 0;
  double Min = 0;
  double Max = 0;
  double Mean = 0;
  double Stddev = 0;

  static SampleSet of(std::vector<double> Xs) {
    SampleSet S;
    S.Samples = std::move(Xs);
    if (S.Samples.empty())
      return S;
    std::vector<double> Sorted = S.Samples;
    std::sort(Sorted.begin(), Sorted.end());
    S.Median = Sorted[Sorted.size() / 2];
    S.Min = Sorted.front();
    S.Max = Sorted.back();
    double Sum = 0;
    for (double X : Sorted)
      Sum += X;
    S.Mean = Sum / static_cast<double>(Sorted.size());
    double Var = 0;
    for (double X : Sorted)
      Var += (X - S.Mean) * (X - S.Mean);
    S.Stddev = Sorted.size() > 1
                   ? std::sqrt(Var / static_cast<double>(Sorted.size() - 1))
                   : 0;
    return S;
  }
};

/// Runs \p Sample() Reps+1 times, discards the warmup run, scales each
/// repetition by \p Scale (e.g. 1e6 / Ops for "us per op"), and returns
/// the full sample set.
inline SampleSet sampleReps(int Reps, double Scale,
                            const std::function<double()> &Sample) {
  (void)Sample(); // warmup
  std::vector<double> Xs;
  Xs.reserve(Reps);
  for (int R = 0; R < Reps; ++R)
    Xs.push_back(Scale * Sample());
  return SampleSet::of(std::move(Xs));
}

/// Runs \p Sample() Reps+1 times, discards the warmup run, and returns the
/// median of the rest.
inline double medianOfReps(int Reps, const std::function<double()> &Sample) {
  return sampleReps(Reps, 1.0, Sample).Median;
}

/// Fixed-width table output (the "rows/series" of the paper's plots).
class Table {
public:
  explicit Table(std::vector<std::string> Columns)
      : Columns(std::move(Columns)) {
    for (const std::string &C : this->Columns)
      std::printf("%18s", C.c_str());
    std::printf("\n");
    for (std::size_t I = 0; I < this->Columns.size(); ++I)
      std::printf("%18s", "----------");
    std::printf("\n");
  }

  /// Starts a row with a label cell.
  void cell(const std::string &S) { std::printf("%18s", S.c_str()); }
  /// Adds a numeric cell (microseconds, ratios, ...).
  void cell(double V) { std::printf("%18.3f", V); }
  void endRow() {
    std::printf("\n");
    std::fflush(stdout);
  }

private:
  std::vector<std::string> Columns;
};

/// Standard banner so bench outputs are self-describing.
inline void banner(const char *Figure, const char *What) {
  std::printf("== %s: %s ==\n", Figure, What);
  std::printf("   host note: single benchmark process; thread counts above "
              "the core count are oversubscribed (see EXPERIMENTS.md)\n");
}

} // namespace bench
} // namespace cqs

#endif // CQS_BENCH_HARNESS_H
