//===- bench/fig14_semaphore_ext.cpp - Figure 14: wide permit sweep -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 14 (Appendix F.1): the Figure 7 workload over a wider variety of
/// permit counts. The paper's observations to reproduce: the CQS sync and
/// async implementations coincide; CQS beats the fair Java semaphore
/// everywhere and approaches the unfair one as permits grow.
///
//===----------------------------------------------------------------------===//

#include "SemaphoreBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main(int argc, char **argv) {
  Reporter R("fig14_semaphore_ext",
             "semaphore: wide permit sweep, lower is better", argc, argv);
  SemTotalOps = R.ops(20000, 4000);
  banner("Figure 14", "semaphore: wide permit sweep, lower is better");
  const std::vector<int> Threads =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<int> PermitSweep =
      R.quick() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (int Permits : PermitSweep)
    semaphoreSweep(R, Permits, Threads);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
