//===- bench/fig14_semaphore_ext.cpp - Figure 14: wide permit sweep -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 14 (Appendix F.1): the Figure 7 workload over a wider variety of
/// permit counts. The paper's observations to reproduce: the CQS sync and
/// async implementations coincide; CQS beats the fair Java semaphore
/// everywhere and approaches the unfair one as permits grow.
///
//===----------------------------------------------------------------------===//

#include "SemaphoreBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main() {
  banner("Figure 14", "semaphore: wide permit sweep, lower is better");
  const std::vector<int> Threads = {1, 2, 4, 8, 16};
  for (int Permits : {1, 2, 4, 8, 16, 32})
    semaphoreSweep(Permits, Threads);
  ebr::drainForTesting();
  return 0;
}
