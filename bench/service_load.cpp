//===- bench/service_load.cpp - million-client open-loop service load -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The end-to-end load benchmark of the sharded quota service (DESIGN.md
/// §13, EXPERIMENTS.md): an *open-loop* generator drives 1M+ logical
/// clients — bounded worker threads submitting on Poisson (exponential
/// inter-arrival) schedules — through the full composition: ChannelV2
/// request queues, per-tenant ShardedSemaphore admission with TimerQueue
/// deadlines, the StripedRwMutex tenant table, the connection pool, and
/// coroutine handlers on the executor.
///
/// Open-loop discipline (the part microbenches cannot model):
///
///  - every client's latency is measured from its *scheduled* arrival
///    time, not from when the generator got around to submitting it, so a
///    slow service cannot hide queueing delay behind a slowed-down
///    generator (no coordinated omission);
///  - clients never block: replies land through Request::Continuation, so
///    the number of outstanding requests is set by the service's speed,
///    not by the generator's thread count.
///
/// One tenant is *hot* — its offered load exceeds its admission capacity
/// (limit / hold time) — so the run exercises deadline shedding, while the
/// cold tenants measure the happy path. Reported series:
///
///   p50/p99/p999   served-request latency (us, lower is better)
///   goodput        served requests per second (higher)
///   shed rate      shed / submitted, % (diagnostic, ungated: set by the
///                  offered-load-to-capacity ratio, not by code quality)
///   admission hit  admitted / (admitted + shed-deadline), % (diagnostic)
///
/// The latency/goodput series are gated by tools/bench_compare.py against
/// the committed BENCH_10.json (p999 at a wider band — see the
/// --p999-threshold flag). Quick and full mode run the *same arrival
/// rate* — quick only shortens the run — so their distributions are
/// comparable and the nightly full run can be sanity-checked against the
/// committed quick baseline.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "service/QuotaService.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

using namespace cqs;
using namespace cqs::service;
using namespace std::chrono;
using bench::Reporter;

namespace {

constexpr std::uint64_t HotTenant = 0;
constexpr unsigned NumTenants = 64;

struct LoadShape {
  std::uint64_t Clients;      ///< total logical clients per repetition
  double RatePerSec;          ///< aggregate Poisson arrival rate
  unsigned LoadThreads;       ///< generator threads (bounded workers)
  nanoseconds HoldTime;       ///< simulated backend latency per request
  std::int64_t HotLimit;      ///< hot tenant permit limit (overloaded)
  std::int64_t ColdLimit;     ///< cold tenant permit limit (uncontended)
  nanoseconds Deadline;       ///< per-tenant admission deadline
  double HotShare;            ///< fraction of traffic aimed at HotTenant
};

/// One logical client: a preallocated slot whose continuation records the
/// reply latency from the *scheduled* arrival. Lives for the whole rep;
/// the service's complete() invokes us on a handler thread, and done()
/// publishes the writes to the collector via the WaitGroup.
struct ClientSlot final : QuotaService::ReplyRequest::Continuation {
  steady_clock::time_point Scheduled;
  QuotaService::ReplyFuture F;
  WaitGroup *WG = nullptr;
  double LatencyUs = 0;
  std::int32_t Verdict = -1;

  void invoke(std::uint64_t ResultWord) override {
    LatencyUs =
        duration<double, std::micro>(steady_clock::now() - Scheduled).count();
    // The bench never cancels its replies, so the word is always a value.
    Verdict = decodeValueWord<std::int32_t>(ResultWord);
    WG->done();
  }

  /// The reply settled before the continuation could attach (immediate
  /// shed, or the service won the race): record inline.
  void completeInline() {
    LatencyUs =
        duration<double, std::micro>(steady_clock::now() - Scheduled).count();
    Verdict = F.tryGet().value_or(-1);
    WG->done();
  }
};

struct RepMetrics {
  double P50 = 0, P99 = 0, P999 = 0;
  double Goodput = 0, ShedRate = 0, AdmissionHit = 0;
};

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  double Idx = P * static_cast<double>(Sorted.size() - 1);
  std::size_t Lo = static_cast<std::size_t>(Idx);
  std::size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Idx - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

/// Runs one repetition: a fresh service, Shape.Clients open-loop arrivals,
/// then a full drain and the conservation audit.
RepMetrics runRep(const LoadShape &Shape, std::vector<ClientSlot> &Slots,
                  unsigned Rep) {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 2;
  C.QueueCapacity = 8192;
  C.Connections = 256;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = Shape.HoldTime;
  C.IdlePoll = milliseconds(5);
  QuotaService S(C);
  S.configureTenant(HotTenant, Shape.HotLimit, Shape.Deadline);
  for (std::uint64_t T = 1; T < NumTenants; ++T)
    S.configureTenant(T, Shape.ColdLimit, Shape.Deadline);

  WaitGroup WG;
  const std::uint64_t PerThread = Shape.Clients / Shape.LoadThreads;
  const std::uint64_t Total = PerThread * Shape.LoadThreads;
  const double MeanGapNs =
      1e9 * static_cast<double>(Shape.LoadThreads) / Shape.RatePerSec;

  auto Start = steady_clock::now();
  std::vector<std::thread> Gen;
  Gen.reserve(Shape.LoadThreads);
  for (unsigned T = 0; T < Shape.LoadThreads; ++T) {
    Gen.emplace_back([&, T] {
      // Deterministic per-(thread, rep) schedule so repetitions are
      // directly comparable draws of the same arrival process.
      std::mt19937_64 Rng(0x9E3779B97F4A7C15ull * (T + 1) + Rep);
      std::exponential_distribution<double> Gap(1.0 / MeanGapNs);
      std::uniform_real_distribution<double> Pick(0.0, 1.0);
      double NextNs = 0;
      ClientSlot *Mine = Slots.data() + static_cast<std::size_t>(T) * PerThread;
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        NextNs += Gap(Rng);
        auto Target =
            Start + nanoseconds(static_cast<std::int64_t>(NextNs));
        // Hybrid pacing: sleep while far out, spin the last stretch.
        for (;;) {
          auto Now = steady_clock::now();
          if (Now >= Target)
            break;
          if (Target - Now > microseconds(200))
            std::this_thread::sleep_for(Target - Now - microseconds(100));
        }
        std::uint64_t Tenant =
            Pick(Rng) < Shape.HotShare
                ? HotTenant
                : 1 + static_cast<std::uint64_t>(Pick(Rng) * (NumTenants - 1)) %
                          (NumTenants - 1);
        ClientSlot &Slot = Mine[I];
        Slot.Scheduled = Target; // scheduled, not actual: open loop
        Slot.WG = &WG;
        WG.add();
        Slot.F = S.submit(Tenant);
        QuotaService::ReplyRequest *R = Slot.F.request();
        if (!R || !R->setContinuation(&Slot))
          Slot.completeInline();
      }
    });
  }
  for (std::thread &T : Gen)
    T.join();
  WG.wait();
  double ElapsedSec =
      duration<double>(steady_clock::now() - Start).count();
  S.shutdown();

  ServiceStatsSnapshot Snap = S.snapshot();
  bool Conserved = Snap.accountingBalanced();
  S.table().forEachLimiter([&](std::uint64_t, const TenantLimiter &L) {
    Conserved = Conserved && L.quiescentConserved();
  });
  if (!Conserved || Snap.Submitted != Total) {
    std::fprintf(stderr, "service_load: conservation violated in rep %u\n",
                 Rep);
    std::exit(1);
  }

  std::vector<double> ServedLat;
  ServedLat.reserve(Total);
  for (std::uint64_t I = 0; I < Total; ++I)
    if (Slots[I].Verdict == VerdictServed)
      ServedLat.push_back(Slots[I].LatencyUs);
  std::sort(ServedLat.begin(), ServedLat.end());

  RepMetrics M;
  M.P50 = percentile(ServedLat, 0.50);
  M.P99 = percentile(ServedLat, 0.99);
  M.P999 = percentile(ServedLat, 0.999);
  M.Goodput = ElapsedSec > 0
                  ? static_cast<double>(Snap.Served) / ElapsedSec
                  : 0;
  M.ShedRate = Snap.Submitted
                   ? 100.0 * static_cast<double>(Snap.shed()) /
                         static_cast<double>(Snap.Submitted)
                   : 0;
  std::uint64_t AdmissionDecisions = Snap.Admitted + Snap.ShedDeadline;
  M.AdmissionHit = AdmissionDecisions
                       ? 100.0 * static_cast<double>(Snap.Admitted) /
                             static_cast<double>(AdmissionDecisions)
                       : 100.0;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  Reporter R("service_load",
             "open-loop million-client load on the sharded quota service",
             Argc, Argv);

  LoadShape Shape;
  // Same arrival rate in both modes; quick only shortens the run (so the
  // two distributions stay comparable, see the file comment). The rate is
  // sized for the 1-2 core CI class: the service+generator together must
  // keep up, or open-loop latencies measure generator lag, not the code.
  Shape.RatePerSec = 25000.0;
  Shape.Clients =
      static_cast<std::uint64_t>(R.ops(/*Full=*/1'250'000, /*Quick=*/50'000));
  Shape.LoadThreads = 2;
  Shape.HoldTime = milliseconds(1);
  Shape.HotLimit = 2;   // capacity 2/1ms = 2k/s << 25% of 25k/s: overloaded
  Shape.ColdLimit = 64; // never the bottleneck
  Shape.Deadline = microseconds(500);
  Shape.HotShare = 0.25;

  const int Reps = R.reps(/*Default=*/3);
  std::vector<ClientSlot> Slots(Shape.Clients / Shape.LoadThreads *
                                Shape.LoadThreads);

  char Params[160];
  std::snprintf(Params, sizeof(Params),
                "rate=%.0f/s,tenants=%u,hotShare=%.2f,hotLimit=%lld,"
                "hold=%lldus,deadline=%lldus",
                Shape.RatePerSec, NumTenants, Shape.HotShare,
                (long long)Shape.HotLimit,
                (long long)duration_cast<microseconds>(Shape.HoldTime).count(),
                (long long)duration_cast<microseconds>(Shape.Deadline).count());
  R.context(Params);

  std::printf("service_load: %llu clients/rep at %.0f/s, %d reps (%s)\n",
              (unsigned long long)Slots.size(), Shape.RatePerSec, Reps,
              R.quick() ? "quick" : "full");

  std::vector<double> P50s, P99s, P999s, Goodputs, ShedRates, Hits;
  CqsStatsSnapshot Before = CqsStats::processSnapshot();
  for (int Rep = 0; Rep < Reps; ++Rep) {
    RepMetrics M = runRep(Shape, Slots, static_cast<unsigned>(Rep));
    std::printf("  rep %d: p50=%.1fus p99=%.1fus p999=%.1fus goodput=%.0f/s "
                "shed=%.2f%% admit=%.2f%%\n",
                Rep, M.P50, M.P99, M.P999, M.Goodput, M.ShedRate,
                M.AdmissionHit);
    P50s.push_back(M.P50);
    P99s.push_back(M.P99);
    P999s.push_back(M.P999);
    Goodputs.push_back(M.Goodput);
    ShedRates.push_back(M.ShedRate);
    Hits.push_back(M.AdmissionHit);
  }
  CqsStatsSnapshot Delta = CqsStats::processSnapshot() - Before;

  int Threads = static_cast<int>(Shape.LoadThreads);
  R.record("p50", Threads, "us", "lower", P50s, Delta);
  R.record("p99", Threads, "us", "lower", P99s, Delta);
  R.record("p999", Threads, "us", "lower", P999s, Delta);
  R.record("goodput", Threads, "ops/s", "higher", Goodputs, Delta);
  // Structural ratios of offered load to configured capacity: reported for
  // the record, never gated (a faster host sheds the same fraction).
  R.record("shed rate", Threads, "%", "lower", ShedRates, Delta,
           /*Gated=*/false);
  R.record("admission hit rate", Threads, "%", "higher", Hits, Delta,
           /*Gated=*/false);
  R.finish();
  return 0;
}
