//===- bench/ablation_segment_size.cpp - SEGM_SIZE tradeoff ---------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Appendix C makes SEGM_SIZE a constant of the infinite-array emulation;
/// this ablation measures its tradeoff on two workloads:
///
///  - transfer: pure suspend+resume pairs (bigger segments amortize
///    allocation and pointer moves);
///  - churn: suspend+cancel storms (smaller segments are reclaimed
///    sooner, but cost more list maintenance).
///
/// Reported: nanoseconds per operation for SEGM_SIZE in {2, 8, 16, 64}.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "core/Cqs.h"
#include "reclaim/Ebr.h"

#include <chrono>
#include <string>

using namespace cqs;
using namespace cqs::bench;

namespace {

int Ops = 200000; // 20000 under --quick

template <unsigned SegSize> double transferRun() {
  Cqs<int, ValueTraits<int>, SegSize> Q;
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Ops; ++I) {
    auto F = Q.suspend();
    (void)Q.resume(I);
    (void)F;
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

template <unsigned SegSize> double churnRun() {
  struct Handler
      : Cqs<int, ValueTraits<int>, SegSize>::SmartCancellationHandler {
    bool onCancellation() override { return true; }
    void completeRefusedResume(int) override {}
  } H;
  Cqs<int, ValueTraits<int>, SegSize> Q(CancellationMode::Smart,
                                        ResumptionMode::Async, &H);
  auto Start = std::chrono::steady_clock::now();
  for (int I = 0; I < Ops; ++I) {
    auto F = Q.suspend();
    (void)F.cancel();
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

template <unsigned SegSize> void row(Reporter &R, Table &T) {
  R.context("segSize=" + std::to_string(SegSize));
  const double Scale = 1e9 / Ops; // ns per op
  T.cell(std::to_string(SegSize));
  T.cell(R.measure("transfer", 1, "ns/op", Scale, 3,
                   [] { return transferRun<SegSize>(); }));
  T.cell(R.measure("churn", 1, "ns/op", Scale, 3,
                   [] { return churnRun<SegSize>(); }));
  T.endRow();
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("ablation_segment_size",
             "segment size: ns per op on transfer and cancellation-churn "
             "workloads",
             argc, argv);
  Ops = R.ops(200000, 20000);
  banner("Ablation B", "segment size: ns per op on transfer and "
                       "cancellation-churn workloads");
  Table T({"SEGM_SIZE", "transfer ns", "churn ns"});
  row<2>(R, T);
  row<8>(R, T);
  row<16>(R, T);
  row<64>(R, T);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
