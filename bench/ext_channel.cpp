//===- bench/ext_channel.cpp - extension: channel throughput --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (the paper's §7 "synchronous queues" direction):
/// producer/consumer throughput of the CQS-composed BufferedChannel against
/// the classic comparators used for pools — the fair/unfair
/// ArrayBlockingQueue (same bounded-FIFO contract) — across capacities,
/// including capacity 0 (rendezvous), which the array queues cannot
/// express (they are benchmarked at capacity 1 there, their minimum).
/// The v2 series run the same workloads over the single-array channel
/// (sync/ChannelV2.h) so the elimination fast path is measured against
/// both the v1 two-queue design and the lock-based baselines.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/BlockingQueue.h"
#include "future/TimedAwait.h"
#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "support/Work.h"
#include "sync/Channel.h"
#include "sync/ChannelV2.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

int TotalItems = 20000; // 4000 under --quick
constexpr std::uint64_t WorkMean = 50;
constexpr int Reps = 3;

/// Pairs of producer/consumer threads move TotalItems through the channel.
template <typename SendFn, typename RecvFn>
double channelWorkload(int Pairs, SendFn Send, RecvFn Recv) {
  const int PerThread = TotalItems / Pairs;
  return runThreadTeam(2 * Pairs, [&](int T) {
    GeometricWork Work(WorkMean, 71 + T);
    if (T % 2 == 0) { // producer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        Send(I);
      }
    } else { // consumer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        Recv();
      }
    }
  });
}

double cqsChannelRun(int Pairs, int Capacity) {
  BufferedChannel<int> Ch(Capacity);
  return channelWorkload(
      Pairs, [&](int V) { (void)Ch.send(V).blockingGet(); },
      [&] { (void)Ch.receive().blockingGet(); });
}

/// Per-operation deadline mix for the timed series: mostly generous 50ms
/// with 1-in-8 tiny 200ns deadlines that frequently expire under load.
std::chrono::nanoseconds timedMixDeadline(SplitMix64 &Rng) {
  using namespace std::chrono;
  return (Rng.next() & 7) == 0 ? nanoseconds(200)
                               : duration_cast<nanoseconds>(milliseconds(50));
}

/// Timed-mix variant: every transfer first tries the deadline-bounded
/// sendFor/receiveFor, falling back to the blocking operation on timeout
/// so exactly TotalItems still cross the channel and us/item totals stay
/// comparable with the untimed series. Exercises the sendFor no-commit
/// doorbell (full buffer / rendezvous) and receiveFor's smart-cancel
/// timeout path under real producer/consumer traffic.
double cqsChannelTimedRun(int Pairs, int Capacity) {
  BufferedChannel<int> Ch(Capacity);
  const int PerThread = TotalItems / Pairs;
  return runThreadTeam(2 * Pairs, [&](int T) {
    GeometricWork Work(WorkMean, 71 + T);
    SplitMix64 Rng(0x517 + T);
    if (T % 2 == 0) { // producer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.sendFor(I, timedMixDeadline(Rng)))
          (void)Ch.send(I).blockingGet();
      }
    } else { // consumer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.receiveFor(timedMixDeadline(Rng)))
          (void)Ch.receive().blockingGet();
      }
    }
  });
}

double cqsChannelV2Run(int Pairs, int Capacity) {
  BufferedChannelV2<int> Ch(Capacity);
  return channelWorkload(
      Pairs, [&](int V) { (void)Ch.send(V).blockingGet(); },
      [&] { (void)Ch.receive().blockingGet(); });
}

double cqsChannelV2TimedRun(int Pairs, int Capacity) {
  BufferedChannelV2<int> Ch(Capacity);
  const int PerThread = TotalItems / Pairs;
  return runThreadTeam(2 * Pairs, [&](int T) {
    GeometricWork Work(WorkMean, 71 + T);
    SplitMix64 Rng(0x517 + T);
    if (T % 2 == 0) { // producer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.sendFor(I, timedMixDeadline(Rng)))
          (void)Ch.send(I).blockingGet();
      }
    } else { // consumer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.receiveFor(timedMixDeadline(Rng)))
          (void)Ch.receive().blockingGet();
      }
    }
  });
}

/// cqsChannelV2TimedRun with every deadline delegated to the central
/// TimerQueue (TimedWaitVia::TimerQueue): the parked side arms one heap
/// entry instead of a per-op timed futex wait. Same deadline mix, same
/// fallback — the delta against "CQS v2 timed-mix" is the timer-delivery
/// mechanism alone.
double cqsChannelV2TimedQueuedRun(int Pairs, int Capacity) {
  BufferedChannelV2<int> Ch(Capacity);
  const int PerThread = TotalItems / Pairs;
  return runThreadTeam(2 * Pairs, [&](int T) {
    TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
    GeometricWork Work(WorkMean, 71 + T);
    SplitMix64 Rng(0x517 + T);
    if (T % 2 == 0) { // producer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.sendFor(I, timedMixDeadline(Rng)))
          (void)Ch.send(I).blockingGet();
      }
    } else { // consumer
      for (int I = 0; I < PerThread; ++I) {
        Work.run();
        if (!Ch.receiveFor(timedMixDeadline(Rng)))
          (void)Ch.receive().blockingGet();
      }
    }
  });
}

double fairAbqRun(int Pairs, int Capacity) {
  FairArrayBlockingQueue<int> Q(std::max(Capacity, 1));
  return channelWorkload(
      Pairs, [&](int V) { Q.put(V); }, [&] { (void)Q.take(); });
}

double unfairAbqRun(int Pairs, int Capacity) {
  UnfairArrayBlockingQueue<int> Q(std::max(Capacity, 1));
  return channelWorkload(
      Pairs, [&](int V) { Q.put(V); }, [&] { (void)Q.take(); });
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("ext_channel",
             "bounded-channel throughput: avg time per transferred item, "
             "lower is better",
             argc, argv);
  TotalItems = R.ops(20000, 4000);
  banner("Extension: channel", "bounded-channel throughput: avg time per "
                               "transferred item, lower is better");
  const std::vector<int> Capacities =
      R.quick() ? std::vector<int>{0, 1} : std::vector<int>{0, 1, 4, 16};
  const std::vector<int> PairCounts =
      R.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const double Scale = 1e6 / TotalItems; // us per transferred item
  for (int Capacity : Capacities) {
    std::printf("\n-- capacity %d%s --\n", Capacity,
                Capacity == 0 ? " (rendezvous; ABQs clamped to 1)" : "");
    R.context("capacity=" + std::to_string(Capacity));
    Table T({"prod/cons pairs", "CQS channel", "CQS channel v2",
             "CQS timed-mix", "CQS v2 timed-mix", "CQS v2 timed-mix TQ",
             "ABQ fair", "ABQ unfair"});
    for (int Pairs : PairCounts) {
      T.cell(std::to_string(Pairs));
      T.cell(R.measure("CQS channel", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return cqsChannelRun(Pairs, Capacity); }));
      T.cell(R.measure("CQS channel v2", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return cqsChannelV2Run(Pairs, Capacity); }));
      T.cell(R.measure("CQS timed-mix", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return cqsChannelTimedRun(Pairs, Capacity); }));
      T.cell(R.measure("CQS v2 timed-mix", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return cqsChannelV2TimedRun(Pairs, Capacity); }));
      T.cell(R.measure("CQS v2 timed-mix TQ", 2 * Pairs, "us/item", Scale,
                       Reps,
                       [&] {
                         return cqsChannelV2TimedQueuedRun(Pairs, Capacity);
                       }));
      T.cell(R.measure("ABQ fair", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return fairAbqRun(Pairs, Capacity); }));
      T.cell(R.measure("ABQ unfair", 2 * Pairs, "us/item", Scale, Reps,
                       [&] { return unfairAbqRun(Pairs, Capacity); }));
      T.endRow();
    }
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
