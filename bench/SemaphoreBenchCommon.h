//===- bench/SemaphoreBenchCommon.h - shared Fig 7/14 machinery -*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 7/14 workload: M operations split over N threads, each
/// operation = prep work (mean 100), acquire a permit, work under the
/// permit (mean 100), release. With K = 1 permit the semaphore is a mutex
/// and the classic CLH/MCS locks join the comparison.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BENCH_SEMAPHOREBENCHCOMMON_H
#define CQS_BENCH_SEMAPHOREBENCHCOMMON_H

#include "BenchMain.h"

#include "baseline/Aqs.h"
#include "baseline/ClhLock.h"
#include "baseline/McsLock.h"
#include "future/TimedAwait.h"
#include "support/Rng.h"
#include "support/Work.h"
#include "sync/Semaphore.h"

#include <chrono>
#include <string>
#include <vector>

namespace cqs {
namespace bench {

inline int SemTotalOps = 20000; // 4000 under --quick
constexpr std::uint64_t SemWorkMean = 100;
constexpr int SemReps = 3;

/// Runs the standard workload against anything exposing blocking
/// acquire/release lambdas.
template <typename AcquireFn, typename ReleaseFn>
double semaphoreWorkload(int Threads, AcquireFn Acquire, ReleaseFn Release) {
  const int PerThread = SemTotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Prep(SemWorkMean, 555 + T);
    GeometricWork Critical(SemWorkMean, 777 + T);
    for (int I = 0; I < PerThread; ++I) {
      Prep.run();
      Acquire();
      Critical.run();
      Release();
    }
  });
}

inline double cqsSemRun(int Threads, int Permits, ResumptionMode RMode) {
  Semaphore S(Permits, RMode);
  return semaphoreWorkload(
      Threads, [&] { (void)S.acquire().blockingGet(); }, [&] { S.release(); });
}

/// Per-operation deadline for the timed-mix series: mostly generous (50ms,
/// effectively always met) with 1-in-8 tiny (200ns, frequently expiring
/// under contention) — the mix exercises timedAwait's cancel-vs-resume
/// plumbing on the hot path without turning the run into pure timeouts.
inline std::chrono::nanoseconds timedMixDeadline(SplitMix64 &Rng) {
  using namespace std::chrono;
  return (Rng.next() & 7) == 0 ? nanoseconds(200)
                               : duration_cast<nanoseconds>(milliseconds(50));
}

/// The standard workload with every acquisition routed through
/// tryAcquireFor. A timed-out operation falls back to a blocking acquire,
/// so each operation still completes exactly once and the us/op totals
/// stay directly comparable with the untimed series: the delta IS the
/// deadline layer's overhead (plus timeout-retry traffic).
inline double cqsSemTimedRun(int Threads, int Permits) {
  Semaphore S(Permits, ResumptionMode::Async);
  const int PerThread = SemTotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Prep(SemWorkMean, 555 + T);
    GeometricWork Critical(SemWorkMean, 777 + T);
    SplitMix64 Rng(0x7157 + T);
    for (int I = 0; I < PerThread; ++I) {
      Prep.run();
      if (!S.tryAcquireFor(timedMixDeadline(Rng)))
        (void)S.acquire().blockingGet();
      Critical.run();
      S.release();
    }
  });
}

/// cqsSemTimedRun with every deadline routed through the central
/// TimerQueue (TimedWaitVia::TimerQueue): a parked waiter costs one heap
/// insert on the timer thread instead of a per-op timed futex, and a
/// completion withdraws its entry with one CAS. The series is directly
/// comparable to "CQS timed-mix" — the delta is the timer-delivery
/// mechanism, everything else is identical.
inline double cqsSemTimedQueuedRun(int Threads, int Permits) {
  Semaphore S(Permits, ResumptionMode::Async);
  const int PerThread = SemTotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    TimedWaitModeScope Mode(TimedWaitVia::TimerQueue);
    GeometricWork Prep(SemWorkMean, 555 + T);
    GeometricWork Critical(SemWorkMean, 777 + T);
    SplitMix64 Rng(0x7157 + T);
    for (int I = 0; I < PerThread; ++I) {
      Prep.run();
      if (!S.tryAcquireFor(timedMixDeadline(Rng)))
        (void)S.acquire().blockingGet();
      Critical.run();
      S.release();
    }
  });
}

inline double aqsSemRun(int Threads, int Permits, bool Fair) {
  AqsSemaphore S(Permits, Fair);
  return semaphoreWorkload(
      Threads, [&] { S.acquire(); }, [&] { S.release(); });
}

inline double clhRun(int Threads) {
  ClhLock L;
  return semaphoreWorkload(
      Threads, [&] { L.lock(); }, [&] { L.unlock(); });
}

inline double mcsRun(int Threads) {
  McsLock L;
  return semaphoreWorkload(
      Threads, [&] { L.lock(); }, [&] { L.unlock(); });
}

/// One table for a given permit count; the mutex case (K = 1) adds the
/// CLH/MCS series exactly as Figure 7's left plot does.
inline void semaphoreSweep(Reporter &R, int Permits,
                           const std::vector<int> &ThreadCounts) {
  std::printf("\n-- %d permit(s)%s; %d ops total; avg time per operation "
              "(us) --\n",
              Permits, Permits == 1 ? " (mutex)" : "", SemTotalOps);
  R.context("permits=" + std::to_string(Permits));
  const double Scale = 1e6 / SemTotalOps; // us per operation
  std::vector<std::string> Cols = {"threads", "CQS async", "CQS sync",
                                   "CQS timed-mix", "CQS timed-mix TQ",
                                   "Java fair", "Java unfair"};
  if (Permits == 1) {
    Cols.push_back("CLH");
    Cols.push_back("MCS");
  }
  Table T(Cols);
  for (int Threads : ThreadCounts) {
    T.cell(std::to_string(Threads));
    T.cell(R.measure("CQS async", Threads, "us/op", Scale, SemReps, [&] {
      return cqsSemRun(Threads, Permits, ResumptionMode::Async);
    }));
    T.cell(R.measure("CQS sync", Threads, "us/op", Scale, SemReps, [&] {
      return cqsSemRun(Threads, Permits, ResumptionMode::Sync);
    }));
    T.cell(R.measure("CQS timed-mix", Threads, "us/op", Scale, SemReps,
                     [&] { return cqsSemTimedRun(Threads, Permits); }));
    T.cell(R.measure("CQS timed-mix TQ", Threads, "us/op", Scale, SemReps,
                     [&] { return cqsSemTimedQueuedRun(Threads, Permits); }));
    T.cell(R.measure("Java fair", Threads, "us/op", Scale, SemReps, [&] {
      return aqsSemRun(Threads, Permits, /*Fair=*/true);
    }));
    T.cell(R.measure("Java unfair", Threads, "us/op", Scale, SemReps, [&] {
      return aqsSemRun(Threads, Permits, /*Fair=*/false);
    }));
    if (Permits == 1) {
      T.cell(R.measure("CLH", Threads, "us/op", Scale, SemReps,
                       [&] { return clhRun(Threads); }));
      T.cell(R.measure("MCS", Threads, "us/op", Scale, SemReps,
                       [&] { return mcsRun(Threads); }));
    }
    T.endRow();
  }
}

} // namespace bench
} // namespace cqs

#endif // CQS_BENCH_SEMAPHOREBENCHCOMMON_H
