//===- bench/BenchMain.h - common bench CLI & JSON reporting ---*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured-results layer shared by every bench binary:
///
///   - a common CLI (`--quick`, `--json=<path>`, `--reps=<n>`, `--help`)
///     so `for b in build/bench/*; do $b --quick --json=...; done` works
///     uniformly in CI;
///   - a Reporter that records one BenchResult per measured cell — all
///     repetition samples (not just the median), min/max/mean/stddev,
///     host metadata, and the delta of the process-wide CqsStats counters
///     around the measurement, so path coverage is attributable per data
///     point — and serializes them with support/Json.h into the
///     `cqs-bench-v1` schema consumed by tools/bench_compare.py.
///
/// The human-readable tables keep printing exactly as before; the JSON
/// file is additive. `--quick` is the CI smoke mode: each binary shrinks
/// its workload/sweeps to a seconds-scale run (same schema, fewer and
/// smaller cells).
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BENCH_BENCHMAIN_H
#define CQS_BENCH_BENCHMAIN_H

#include "Harness.h"

#include "core/CqsStats.h"
#include "support/Json.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#ifndef CQS_BENCH_BUILD_TYPE
#define CQS_BENCH_BUILD_TYPE "unknown"
#endif

namespace cqs {
namespace bench {

/// Schema identifier written into every file; bump on breaking changes
/// (tools/bench_compare.py validates it).
inline constexpr const char *SchemaName = "cqs-bench-v1";

/// Parsed common CLI options.
struct BenchOptions {
  bool Quick = false;       ///< CI smoke mode: tiny workloads, 3 reps.
  std::string JsonPath;     ///< empty = no JSON output
  int RepsOverride = 0;     ///< 0 = per-mode default
};

/// One measured cell. `Series` is the table column ("CQS async"),
/// `Params` the sweep context ("permits=4"), `Direction` whether lower or
/// higher values are better (timings are "lower"; fairness indices are
/// "higher").
struct BenchResult {
  std::string Benchmark;
  std::string Series;
  std::string Params;
  int Threads = 0;
  std::string Unit;
  std::string Direction = "lower";
  SampleSet Samples;
  CqsStatsSnapshot StatsDelta;
  /// False for diagnostic series whose run-to-run variance is structural
  /// (e.g. raw acquisition counts of a barging lock on one core); the
  /// comparator reports but never gates on them.
  bool Gated = true;
};

/// Collects BenchResults for one binary and writes the JSON file on
/// finish(). Also owns the quick-mode knobs so each bench can scale its
/// workload consistently.
class Reporter {
public:
  /// Parses the common flags; exits on `--help` or unknown arguments so
  /// CI failures are loud rather than silently ignoring a typo.
  Reporter(std::string BenchName, std::string Description, int Argc,
           char **Argv)
      : Name(std::move(BenchName)), Desc(std::move(Description)) {
    for (int I = 1; I < Argc; ++I) {
      const char *A = Argv[I];
      if (std::strcmp(A, "--quick") == 0) {
        Opts.Quick = true;
      } else if (std::strncmp(A, "--json=", 7) == 0) {
        Opts.JsonPath = A + 7;
      } else if (std::strncmp(A, "--reps=", 7) == 0) {
        Opts.RepsOverride = std::atoi(A + 7);
        if (Opts.RepsOverride <= 0) {
          std::fprintf(stderr, "%s: bad --reps value '%s'\n", Name.c_str(),
                       A + 7);
          std::exit(2);
        }
      } else if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0) {
        usage(stdout);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown argument '%s'\n", Name.c_str(), A);
        usage(stderr);
        std::exit(2);
      }
    }
  }

  Reporter(const Reporter &) = delete;
  Reporter &operator=(const Reporter &) = delete;

  ~Reporter() { finish(); }

  bool quick() const { return Opts.Quick; }
  const std::string &jsonPath() const { return Opts.JsonPath; }

  /// Repetitions for a cell: explicit --reps wins; --quick uses 3 — the
  /// regression gate (tools/bench_compare.py) compares best-of-reps, and
  /// a min needs a few draws to be meaningful on the noisy shared core —
  /// otherwise the bench's own default.
  int reps(int Default) const {
    if (Opts.RepsOverride > 0)
      return Opts.RepsOverride;
    return Opts.Quick ? 3 : Default;
  }

  /// Workload size for the current mode.
  int ops(int Full, int Quick) const { return Opts.Quick ? Quick : Full; }

  /// Sets the sweep context ("workMean=100") recorded with subsequent
  /// measurements.
  void context(std::string Params) { CurrentParams = std::move(Params); }

  /// Measures one cell: warmup + reps() repetitions of \p Sample
  /// (seconds), each scaled by \p Scale into \p Unit; snapshots the
  /// process-wide CqsStats delta across the measured repetitions (warmup
  /// excluded) and records a BenchResult. Returns the median for the
  /// human-readable table.
  double measure(const std::string &Series, int Threads, const char *Unit,
                 double Scale, int DefaultReps,
                 const std::function<double()> &Sample) {
    (void)Sample(); // warmup, outside the stats window
    CqsStatsSnapshot Before = CqsStats::processSnapshot();
    const int N = reps(DefaultReps);
    std::vector<double> Xs;
    Xs.reserve(N);
    for (int R = 0; R < N; ++R)
      Xs.push_back(Scale * Sample());
    CqsStatsSnapshot After = CqsStats::processSnapshot();

    BenchResult Res;
    Res.Benchmark = Name;
    Res.Series = Series;
    Res.Params = CurrentParams;
    Res.Threads = Threads;
    Res.Unit = Unit;
    Res.Samples = SampleSet::of(std::move(Xs));
    Res.StatsDelta = After - Before;
    Results.push_back(Res);
    return Res.Samples.Median;
  }

  /// Records an externally computed metric (e.g. a fairness index) as a
  /// single-sample result. \p Direction is "lower" or "higher" (which
  /// way is better); \p Stats the attributed counter delta if the caller
  /// tracked one.
  void record(const std::string &Series, int Threads, const char *Unit,
              const char *Direction, std::vector<double> Values,
              const CqsStatsSnapshot &Stats = CqsStatsSnapshot(),
              bool Gated = true) {
    BenchResult Res;
    Res.Benchmark = Name;
    Res.Series = Series;
    Res.Params = CurrentParams;
    Res.Threads = Threads;
    Res.Unit = Unit;
    Res.Direction = Direction;
    Res.Samples = SampleSet::of(std::move(Values));
    Res.StatsDelta = Stats;
    Res.Gated = Gated;
    Results.push_back(Res);
  }

  void record(const std::string &Series, int Threads, const char *Unit,
              const char *Direction, double Value,
              const CqsStatsSnapshot &Stats = CqsStatsSnapshot(),
              bool Gated = true) {
    record(Series, Threads, Unit, Direction, std::vector<double>{Value},
           Stats, Gated);
  }

  const std::vector<BenchResult> &results() const { return Results; }

  /// Serializes all results into the cqs-bench-v1 schema.
  std::string toJson() const {
    json::Writer W;
    W.beginObject();
    W.key("schema");
    W.value(SchemaName);
    W.key("benchmark");
    W.value(Name);
    W.key("description");
    W.value(Desc);
    W.key("quick");
    W.value(Opts.Quick);
    W.key("host");
    W.beginObject();
    W.key("nproc");
    W.value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
    W.key("build_type");
    W.value(CQS_BENCH_BUILD_TYPE);
    W.key("compiler");
    W.value(__VERSION__);
    W.endObject();
    W.key("results");
    W.beginArray();
    for (const BenchResult &R : Results) {
      W.beginObject();
      W.key("benchmark");
      W.value(R.Benchmark);
      W.key("series");
      W.value(R.Series);
      W.key("params");
      W.value(R.Params);
      W.key("threads");
      W.value(R.Threads);
      W.key("unit");
      W.value(R.Unit);
      W.key("direction");
      W.value(R.Direction);
      W.key("gated");
      W.value(R.Gated);
      W.key("reps");
      W.value(static_cast<std::uint64_t>(R.Samples.Samples.size()));
      W.key("samples");
      W.beginArray();
      for (double X : R.Samples.Samples)
        W.value(X);
      W.endArray();
      W.key("median");
      W.value(R.Samples.Median);
      W.key("min");
      W.value(R.Samples.Min);
      W.key("max");
      W.value(R.Samples.Max);
      W.key("mean");
      W.value(R.Samples.Mean);
      W.key("stddev");
      W.value(R.Samples.Stddev);
      W.key("stats");
      W.beginObject();
      for (int I = 0; I < CqsStatsSnapshot::NumFields; ++I) {
        W.key(CqsStatsSnapshot::fieldName(I));
        W.value(R.StatsDelta.field(I));
      }
      W.endObject();
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.take();
  }

  /// Writes the JSON file if `--json=` was given. Idempotent; also run
  /// by the destructor so a bench that forgets the explicit call still
  /// produces its file.
  void finish() {
    if (Finished)
      return;
    Finished = true;
    if (Opts.JsonPath.empty())
      return;
    std::ofstream Out(Opts.JsonPath);
    if (!Out) {
      std::fprintf(stderr, "%s: cannot write %s\n", Name.c_str(),
                   Opts.JsonPath.c_str());
      std::exit(1);
    }
    Out << toJson();
    std::printf("\nwrote %zu results to %s\n", Results.size(),
                Opts.JsonPath.c_str());
  }

private:
  void usage(std::FILE *F) const {
    std::fprintf(F,
                 "%s — %s\n\n"
                 "usage: %s [--quick] [--json=<path>] [--reps=<n>]\n"
                 "  --quick       seconds-scale CI smoke sweep (3 reps, "
                 "reduced workload)\n"
                 "  --json=<path> write machine-readable results "
                 "(schema %s)\n"
                 "  --reps=<n>    override repetitions per cell\n",
                 Name.c_str(), Desc.c_str(), Name.c_str(), SchemaName);
  }

  std::string Name;
  std::string Desc;
  BenchOptions Opts;
  std::string CurrentParams;
  std::vector<BenchResult> Results;
  bool Finished = false;
};

} // namespace bench
} // namespace cqs

#endif // CQS_BENCH_BENCHMAIN_H
