//===- bench/fig15_pools_ext.cpp - Figure 15: wide element sweep ----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 15 (Appendix F.2): the Figure 8 pool workload over a wider
/// variety of shared-element counts. Paper-shape expectations: both CQS
/// pools beat the fair ArrayBlockingQueue by a wide margin everywhere, and
/// beat the unfair baselines once at least ~8 elements are shared.
///
//===----------------------------------------------------------------------===//

#include "PoolBenchCommon.h"

#include "reclaim/Ebr.h"

using namespace cqs;
using namespace cqs::bench;

int main(int argc, char **argv) {
  Reporter R("fig15_pools_ext",
             "blocking pools: wide element sweep, lower is better", argc,
             argv);
  PoolTotalOps = R.ops(20000, 4000);
  banner("Figure 15", "blocking pools: wide element sweep, lower is better");
  const std::vector<int> Threads =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  const std::vector<int> ElementSweep =
      R.quick() ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (int Elements : ElementSweep)
    poolSweep(R, Elements, Threads);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
