//===- bench/fig6_latch.cpp - Figure 6: count-down-latch comparison -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Figure 6 of the paper: a fixed number of countDown() invocations is
/// distributed among N threads, each followed by uncontended work (mean 50
/// and 200 iterations); a set of waiters awaits the latch. The "Baseline"
/// series performs only the work, measuring the latch-free floor. Reported:
/// total time for the workload (microseconds), lower is better.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/Aqs.h"
#include "reclaim/Ebr.h"
#include "support/Work.h"
#include "sync/CountDownLatch.h"

#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr int Reps = 3;
int TotalCountDowns = 8000; // 2000 under --quick

double cqsLatchRun(int Threads, std::uint64_t WorkMean) {
  CountDownLatch L(TotalCountDowns);
  const int PerThread = TotalCountDowns / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 99 + T);
    // One waiter per thread joins at the end, as in the paper's workload
    // where awaiters observe the full set of operations completing.
    for (int I = 0; I < PerThread; ++I) {
      L.countDown();
      Work.run();
    }
    auto F = L.await();
    (void)F.blockingGet();
  });
}

double aqsLatchRun(int Threads, std::uint64_t WorkMean) {
  AqsCountDownLatch L(TotalCountDowns);
  const int PerThread = TotalCountDowns / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 99 + T);
    for (int I = 0; I < PerThread; ++I) {
      L.countDown();
      Work.run();
    }
    L.await();
  });
}

double noLatchRun(int Threads, std::uint64_t WorkMean) {
  const int PerThread = TotalCountDowns / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 99 + T);
    for (int I = 0; I < PerThread; ++I)
      Work.run();
  });
}

void runSweep(Reporter &R, std::uint64_t WorkMean) {
  std::printf("\n-- work mean = %llu uncontended loop iterations, %d "
              "countDown()s total --\n",
              static_cast<unsigned long long>(WorkMean), TotalCountDowns);
  R.context("workMean=" + std::to_string(WorkMean));
  Table T({"threads", "CQS us", "Java us", "Baseline us"});
  const std::vector<int> ThreadCounts =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8, 16};
  for (int Threads : ThreadCounts) {
    T.cell(std::to_string(Threads));
    T.cell(R.measure("CQS", Threads, "us/run", 1e6, Reps,
                     [&] { return cqsLatchRun(Threads, WorkMean); }));
    T.cell(R.measure("Java", Threads, "us/run", 1e6, Reps,
                     [&] { return aqsLatchRun(Threads, WorkMean); }));
    T.cell(R.measure("Baseline", Threads, "us/run", 1e6, Reps,
                     [&] { return noLatchRun(Threads, WorkMean); }));
    T.endRow();
  }
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("fig6_latch",
             "count-down-latch: total workload time, lower is better",
             argc, argv);
  TotalCountDowns = R.ops(8000, 2000);
  banner("Figure 6", "count-down-latch: total workload time, lower is "
                     "better (Baseline = work only, no latch)");
  runSweep(R, 50);
  if (!R.quick())
    runSweep(R, 200);
  R.finish();
  ebr::drainForTesting();
  return 0;
}
