//===- bench/micro_cqs_ops.cpp - google-benchmark CQS micro-ops -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Per-operation costs of the CQS core under google-benchmark: the
/// suspend-then-resume pair, the resume-before-suspend elimination path,
/// the broken-cell path of the synchronous mode, and the cancellation
/// handler, single-threaded and contended.
///
//===----------------------------------------------------------------------===//

#include "baseline/Aqs.h"
#include "core/Cqs.h"
#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"

#include <benchmark/benchmark.h>

using namespace cqs;

namespace {

using IntCqs = Cqs<int>;

void BM_SuspendThenResume(benchmark::State &State) {
  IntCqs Q;
  for (auto _ : State) {
    auto F = Q.suspend();
    benchmark::DoNotOptimize(Q.resume(1));
    benchmark::DoNotOptimize(F.tryGet());
  }
}
BENCHMARK(BM_SuspendThenResume);

void BM_ResumeThenSuspendElimination(benchmark::State &State) {
  IntCqs Q;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Q.resume(1));
    auto F = Q.suspend();
    benchmark::DoNotOptimize(F.isImmediate());
  }
}
BENCHMARK(BM_ResumeThenSuspendElimination);

void BM_SuspendCancelSmart(benchmark::State &State) {
  struct Handler : IntCqs::SmartCancellationHandler {
    bool onCancellation() override { return true; }
    void completeRefusedResume(int) override {}
  } H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  for (auto _ : State) {
    auto F = Q.suspend();
    benchmark::DoNotOptimize(F.cancel());
  }
}
BENCHMARK(BM_SuspendCancelSmart);

void BM_SyncBrokenCell(benchmark::State &State) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Q.resume(1)); // times out, breaks the cell
    auto F = Q.suspend();                  // meets the broken cell
    benchmark::DoNotOptimize(F.valid());
  }
}
BENCHMARK(BM_SyncBrokenCell);

void BM_MutexUncontended(benchmark::State &State) {
  Mutex M;
  for (auto _ : State) {
    auto F = M.lock();
    benchmark::DoNotOptimize(F.isImmediate());
    M.unlock();
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_SemaphoreContended(benchmark::State &State) {
  static Semaphore S(1);
  for (auto _ : State) {
    auto F = S.acquire();
    (void)F.blockingGet();
    S.release();
  }
}
BENCHMARK(BM_SemaphoreContended)->Threads(1)->Threads(2)->Threads(4);

void BM_EbrGuardPinUnpin(benchmark::State &State) {
  for (auto _ : State) {
    ebr::Guard G;
    benchmark::DoNotOptimize(&G);
  }
}
BENCHMARK(BM_EbrGuardPinUnpin);

void BM_EbrRetireAmortized(benchmark::State &State) {
  for (auto _ : State) {
    ebr::Guard G;
    ebr::retireObject(new int(1));
  }
  ebr::drainForTesting();
}
BENCHMARK(BM_EbrRetireAmortized);

void BM_RequestCreateCompleteGet(benchmark::State &State) {
  for (auto _ : State) {
    auto *R = new Request<int>(/*InitialRefs=*/1);
    benchmark::DoNotOptimize(R->complete(7));
    benchmark::DoNotOptimize(R->tryGet());
    R->release();
  }
}
BENCHMARK(BM_RequestCreateCompleteGet);

void BM_RequestCancelWithHandler(benchmark::State &State) {
  for (auto _ : State) {
    auto *R = new Request<int>(/*InitialRefs=*/1);
    R->bindCancellation([](void *, void *, std::uint32_t) {}, nullptr,
                        nullptr, 0);
    benchmark::DoNotOptimize(R->cancel());
    R->release();
  }
}
BENCHMARK(BM_RequestCancelWithHandler);

// FAA-based CQS mutex vs CAS-based AQS lock, uncontended fast path — the
// structural difference Section 7 credits for the scalability gap.
void BM_AqsLockUncontended(benchmark::State &State) {
  AqsLock L(/*Fair=*/false);
  for (auto _ : State) {
    L.lock();
    L.unlock();
  }
}
BENCHMARK(BM_AqsLockUncontended);

void BM_AqsLockContended(benchmark::State &State) {
  static AqsLock L(/*Fair=*/false);
  for (auto _ : State) {
    L.lock();
    L.unlock();
  }
}
BENCHMARK(BM_AqsLockContended)->Threads(2)->Threads(4);

void BM_CqsMutexContended(benchmark::State &State) {
  static Mutex M;
  for (auto _ : State) {
    (void)M.lock().blockingGet();
    M.unlock();
  }
}
BENCHMARK(BM_CqsMutexContended)->Threads(2)->Threads(4);

} // namespace

BENCHMARK_MAIN();
