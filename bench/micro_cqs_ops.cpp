//===- bench/micro_cqs_ops.cpp - google-benchmark CQS micro-ops -----------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Per-operation costs of the CQS core under google-benchmark: the
/// suspend-then-resume pair, the resume-before-suspend elimination path,
/// the broken-cell path of the synchronous mode, and the cancellation
/// handler, single-threaded and contended.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "baseline/Aqs.h"
#include "core/Cqs.h"
#include "future/Future.h"
#include "reclaim/Ebr.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <vector>

using namespace cqs;

namespace {

using IntCqs = Cqs<int>;

void BM_SuspendThenResume(benchmark::State &State) {
  IntCqs Q;
  for (auto _ : State) {
    auto F = Q.suspend();
    benchmark::DoNotOptimize(Q.resume(1));
    benchmark::DoNotOptimize(F.tryGet());
  }
}
BENCHMARK(BM_SuspendThenResume);

void BM_ResumeThenSuspendElimination(benchmark::State &State) {
  IntCqs Q;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Q.resume(1));
    auto F = Q.suspend();
    benchmark::DoNotOptimize(F.isImmediate());
  }
}
BENCHMARK(BM_ResumeThenSuspendElimination);

// Allocation pressure: hold Depth suspensions outstanding, then resume
// them all in FIFO order. Depth spans one cell up to many segments, so the
// series measures how per-op cost scales with live-request/segment churn:
// with pooling every request and segment is served from the freelists once
// warm, without it each batch pays Depth allocations plus segment churn.
void BM_SuspendResumeBatch(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  IntCqs Q;
  std::vector<IntCqs::FutureType> Fs;
  Fs.reserve(Depth);
  for (auto _ : State) {
    for (int I = 0; I < Depth; ++I)
      Fs.push_back(Q.suspend());
    for (int I = 0; I < Depth; ++I)
      benchmark::DoNotOptimize(Q.resume(I));
    Fs.clear();
  }
  State.SetItemsProcessed(State.iterations() * Depth * 2);
}
BENCHMARK(BM_SuspendResumeBatch)->Arg(1)->Arg(16)->Arg(256)->Arg(2048);

void BM_SuspendCancelSmart(benchmark::State &State) {
  struct Handler : IntCqs::SmartCancellationHandler {
    bool onCancellation() override { return true; }
    void completeRefusedResume(int) override {}
  } H;
  IntCqs Q(CancellationMode::Smart, ResumptionMode::Async, &H);
  for (auto _ : State) {
    auto F = Q.suspend();
    benchmark::DoNotOptimize(F.cancel());
  }
}
BENCHMARK(BM_SuspendCancelSmart);

void BM_SyncBrokenCell(benchmark::State &State) {
  IntCqs Q(CancellationMode::Simple, ResumptionMode::Sync);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Q.resume(1)); // times out, breaks the cell
    auto F = Q.suspend();                  // meets the broken cell
    benchmark::DoNotOptimize(F.valid());
  }
}
BENCHMARK(BM_SyncBrokenCell);

void BM_MutexUncontended(benchmark::State &State) {
  Mutex M;
  for (auto _ : State) {
    auto F = M.lock();
    benchmark::DoNotOptimize(F.isImmediate());
    M.unlock();
  }
}
BENCHMARK(BM_MutexUncontended);

void BM_SemaphoreContended(benchmark::State &State) {
  static Semaphore S(1);
  for (auto _ : State) {
    auto F = S.acquire();
    (void)F.blockingGet();
    S.release();
  }
}
BENCHMARK(BM_SemaphoreContended)->Threads(1)->Threads(2)->Threads(4);

void BM_EbrGuardPinUnpin(benchmark::State &State) {
  for (auto _ : State) {
    ebr::Guard G;
    benchmark::DoNotOptimize(&G);
  }
}
BENCHMARK(BM_EbrGuardPinUnpin);

void BM_EbrRetireAmortized(benchmark::State &State) {
  for (auto _ : State) {
    ebr::Guard G;
    ebr::retireObject(new int(1));
  }
  ebr::drainForTesting();
}
BENCHMARK(BM_EbrRetireAmortized);

void BM_RequestCreateCompleteGet(benchmark::State &State) {
  for (auto _ : State) {
    auto *R = Request<int>::acquire(/*InitialRefs=*/1);
    benchmark::DoNotOptimize(R->complete(7));
    benchmark::DoNotOptimize(R->tryGet());
    R->release();
  }
}
BENCHMARK(BM_RequestCreateCompleteGet);

void BM_RequestCancelWithHandler(benchmark::State &State) {
  for (auto _ : State) {
    auto *R = Request<int>::acquire(/*InitialRefs=*/1);
    R->bindCancellation([](void *, void *, std::uint32_t) {}, nullptr,
                        nullptr, 0);
    benchmark::DoNotOptimize(R->cancel());
    R->release();
  }
}
BENCHMARK(BM_RequestCancelWithHandler);

// FAA-based CQS mutex vs CAS-based AQS lock, uncontended fast path — the
// structural difference Section 7 credits for the scalability gap.
void BM_AqsLockUncontended(benchmark::State &State) {
  AqsLock L(/*Fair=*/false);
  for (auto _ : State) {
    L.lock();
    L.unlock();
  }
}
BENCHMARK(BM_AqsLockUncontended);

void BM_AqsLockContended(benchmark::State &State) {
  static AqsLock L(/*Fair=*/false);
  for (auto _ : State) {
    L.lock();
    L.unlock();
  }
}
BENCHMARK(BM_AqsLockContended)->Threads(2)->Threads(4);

void BM_CqsMutexContended(benchmark::State &State) {
  static Mutex M;
  for (auto _ : State) {
    (void)M.lock().blockingGet();
    M.unlock();
  }
}
BENCHMARK(BM_CqsMutexContended)->Threads(2)->Threads(4);

/// Console reporter that additionally records every finished run into the
/// common Reporter so micro benches emit the same cqs-bench-v1 schema as
/// the figure benches. Each google-benchmark run becomes a single-sample
/// result (google-benchmark already aggregates iterations internally);
/// the CqsStats delta since the previous report attributes path traffic
/// to the benchmark family that just ran.
class SchemaBridgeReporter : public benchmark::ConsoleReporter {
public:
  explicit SchemaBridgeReporter(cqs::bench::Reporter &R)
      : Common(R), LastStats(CqsStats::processSnapshot()) {}

  void ReportRuns(const std::vector<Run> &Reports) override {
    CqsStatsSnapshot Now = CqsStats::processSnapshot();
    CqsStatsSnapshot Delta = Now - LastStats;
    LastStats = Now;
    // With --benchmark_repetitions all repetitions of a family arrive in
    // one batch; fold them into a single multi-sample result so the
    // comparator sees a real min/median.
    std::vector<std::string> Order;
    std::map<std::string, std::pair<int, std::vector<double>>> Grouped;
    for (const Run &R : Reports) {
      if (R.error_occurred || R.run_type != Run::RT_Iteration)
        continue;
      std::string Name = R.benchmark_name();
      auto It = Grouped.find(Name);
      if (It == Grouped.end()) {
        Order.push_back(Name);
        It = Grouped.emplace(Name, std::make_pair(
                                       static_cast<int>(R.threads),
                                       std::vector<double>())).first;
      }
      It->second.second.push_back(R.GetAdjustedRealTime());
    }
    for (const std::string &Name : Order) {
      // Contended families run more threads than the CI host has cores;
      // their per-op cost is dominated by preemption timing, so they are
      // recorded as ungated diagnostics. The single-threaded fast paths
      // are the stable, gateable signal here.
      const bool Gated = Grouped[Name].first <= 1;
      Common.record(Name, Grouped[Name].first, "ns/op", "lower",
                    Grouped[Name].second, Delta, Gated);
    }
    ConsoleReporter::ReportRuns(Reports);
  }

private:
  cqs::bench::Reporter &Common;
  CqsStatsSnapshot LastStats;
};

} // namespace

int main(int argc, char **argv) {
  // Split argv: the common bench flags go to the Reporter, everything
  // else (e.g. --benchmark_filter=...) is forwarded to google-benchmark.
  std::vector<char *> Ours{argv[0]};
  std::vector<char *> Gbench{argv[0]};
  for (int I = 1; I < argc; ++I) {
    const bool IsOurs = std::strcmp(argv[I], "--quick") == 0 ||
                        std::strncmp(argv[I], "--json=", 7) == 0 ||
                        std::strncmp(argv[I], "--reps=", 7) == 0 ||
                        std::strcmp(argv[I], "--help") == 0 ||
                        std::strcmp(argv[I], "-h") == 0;
    (IsOurs ? Ours : Gbench).push_back(argv[I]);
  }
  cqs::bench::Reporter R("micro_cqs_ops",
                         "google-benchmark micro-operations of the CQS core "
                         "(suspend/resume, elimination, cancellation, EBR)",
                         static_cast<int>(Ours.size()), Ours.data());

  // --quick maps onto a short per-benchmark measuring window (the 1.7.x
  // flag takes plain seconds) with min-of-3 repetitions, matching the
  // figure benches' gate statistic.
  std::string MinTime = "--benchmark_min_time=0.005";
  std::string Repetitions = "--benchmark_repetitions=3";
  if (R.quick()) {
    Gbench.push_back(MinTime.data());
    Gbench.push_back(Repetitions.data());
  }
  int GbenchArgc = static_cast<int>(Gbench.size());
  benchmark::Initialize(&GbenchArgc, Gbench.data());
  if (benchmark::ReportUnrecognizedArguments(GbenchArgc, Gbench.data()))
    return 1;

  SchemaBridgeReporter Bridge(R);
  benchmark::RunSpecifiedBenchmarks(&Bridge);
  benchmark::Shutdown();
  R.finish();
  ebr::drainForTesting();
  return 0;
}
