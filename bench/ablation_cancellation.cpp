//===- bench/ablation_cancellation.cpp - simple vs smart cancellation -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The Section 3.1 "Limitations" ablation: N lock() requests suspend and
/// immediately abort; then a single unlock()-style resume arrives.
///
///  - Simple cancellation: the resume must fail through every cancelled
///    cell, so the release costs Theta(N).
///  - Smart cancellation: cancelled cells are deregistered eagerly and
///    whole segments are skipped, so the release is O(1) amortized.
///
/// Reported: microseconds for the release that follows N cancellations.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "core/Cqs.h"
#include "reclaim/Ebr.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

using UnitCqs = Cqs<Unit, ValueTraits<Unit>, 16>;

struct CounterHandler : UnitCqs::SmartCancellationHandler {
  bool onCancellation() override { return true; }
  void completeRefusedResume(Unit) override {}
};

/// Time for one resume after \p Cancelled waiters aborted, plus one live
/// waiter at the end so the resume has a real target.
double releaseAfterCancellations(CancellationMode Mode, int Cancelled) {
  CounterHandler H;
  UnitCqs Q(Mode, ResumptionMode::Async,
            Mode == CancellationMode::Smart ? &H : nullptr);
  std::vector<UnitCqs::FutureType> Fs;
  Fs.reserve(Cancelled);
  for (int I = 0; I < Cancelled; ++I)
    Fs.push_back(Q.suspend());
  auto Live = Q.suspend();
  for (auto &F : Fs)
    (void)F.cancel();

  auto Start = std::chrono::steady_clock::now();
  if (Mode == CancellationMode::Simple) {
    // The primitive's release loop: retry until a live waiter is resumed
    // (Section 3.1: Theta(N) failing resumes).
    while (!Q.resume(Unit{})) {
    }
  } else {
    (void)Q.resume(Unit{});
  }
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("ablation_cancellation",
             "release cost after N aborted waiters: simple is Theta(N), "
             "smart is O(1) amortized",
             argc, argv);
  banner("Ablation A", "release cost after N aborted waiters: simple is "
                       "Theta(N), smart is O(1) amortized");
  Table T({"cancelled N", "simple us", "smart us"});
  const std::vector<int> Ns = R.quick() ? std::vector<int>{16, 1024}
                                        : std::vector<int>{16, 256, 4096,
                                                           65536};
  for (int N : Ns) {
    R.context("cancelled=" + std::to_string(N));
    T.cell(std::to_string(N));
    T.cell(R.measure("simple", 1, "us/release", 1e6, 5, [&] {
      return releaseAfterCancellations(CancellationMode::Simple, N);
    }));
    T.cell(R.measure("smart", 1, "us/release", 1e6, 5, [&] {
      return releaseAfterCancellations(CancellationMode::Smart, N);
    }));
    T.endRow();
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
