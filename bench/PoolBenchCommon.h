//===- bench/PoolBenchCommon.h - shared Fig 8/15 machinery -----*- C++ -*-===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 8/15 workload: M operations split over N threads, each
/// operation = work (mean 100), take an element from the shared pool, work
/// with the element (mean 100), put it back. Series: CQS queue-based and
/// stack-based pools vs fair/unfair ArrayBlockingQueue and the (unfair)
/// LinkedBlockingQueue.
///
//===----------------------------------------------------------------------===//

#ifndef CQS_BENCH_POOLBENCHCOMMON_H
#define CQS_BENCH_POOLBENCHCOMMON_H

#include "BenchMain.h"

#include "baseline/BlockingQueue.h"
#include "support/Work.h"
#include "sync/Pool.h"

#include <string>
#include <vector>

namespace cqs {
namespace bench {

inline int PoolTotalOps = 20000; // 4000 under --quick
constexpr std::uint64_t PoolWorkMean = 100;
constexpr int PoolReps = 3;

template <typename TakeFn, typename PutFn>
double poolWorkload(int Threads, TakeFn Take, PutFn Put) {
  const int PerThread = PoolTotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Before(PoolWorkMean, 31 + T);
    GeometricWork With(PoolWorkMean, 62 + T);
    for (int I = 0; I < PerThread; ++I) {
      Before.run();
      int *E = Take();
      With.run();
      Put(E);
    }
  });
}

inline double cqsQueuePoolRun(int Threads, int Elements,
                              std::vector<int> &Arena) {
  QueueBlockingPool<int *> P;
  for (int I = 0; I < Elements; ++I)
    P.put(&Arena[I]);
  return poolWorkload(
      Threads, [&] { return *P.take().blockingGet(); },
      [&](int *E) { P.put(E); });
}

inline double cqsStackPoolRun(int Threads, int Elements,
                              std::vector<int> &Arena) {
  StackBlockingPool<int *> P;
  for (int I = 0; I < Elements; ++I)
    P.put(&Arena[I]);
  return poolWorkload(
      Threads, [&] { return *P.take().blockingGet(); },
      [&](int *E) { P.put(E); });
}

inline double fairAbqRun(int Threads, int Elements, std::vector<int> &Arena) {
  FairArrayBlockingQueue<int *> Q(Elements);
  for (int I = 0; I < Elements; ++I)
    Q.put(&Arena[I]);
  return poolWorkload(
      Threads, [&] { return Q.take(); }, [&](int *E) { Q.put(E); });
}

inline double unfairAbqRun(int Threads, int Elements,
                           std::vector<int> &Arena) {
  UnfairArrayBlockingQueue<int *> Q(Elements);
  for (int I = 0; I < Elements; ++I)
    Q.put(&Arena[I]);
  return poolWorkload(
      Threads, [&] { return Q.take(); }, [&](int *E) { Q.put(E); });
}

inline double lbqRun(int Threads, int Elements, std::vector<int> &Arena) {
  LinkedBlockingQueueBaseline<int *> Q;
  for (int I = 0; I < Elements; ++I)
    Q.put(&Arena[I]);
  return poolWorkload(
      Threads, [&] { return Q.take(); }, [&](int *E) { Q.put(E); });
}

inline void poolSweep(Reporter &R, int Elements,
                      const std::vector<int> &ThreadCounts) {
  std::printf("\n-- %d shared element(s); %d ops total; avg time per "
              "operation (us) --\n",
              Elements, PoolTotalOps);
  R.context("elements=" + std::to_string(Elements));
  const double Scale = 1e6 / PoolTotalOps; // us per operation
  std::vector<int> Arena(Elements);
  Table T({"threads", "CQS queue", "CQS stack", "ABQ fair", "ABQ unfair",
           "LBQ"});
  for (int Threads : ThreadCounts) {
    T.cell(std::to_string(Threads));
    T.cell(R.measure("CQS queue", Threads, "us/op", Scale, PoolReps, [&] {
      return cqsQueuePoolRun(Threads, Elements, Arena);
    }));
    T.cell(R.measure("CQS stack", Threads, "us/op", Scale, PoolReps, [&] {
      return cqsStackPoolRun(Threads, Elements, Arena);
    }));
    T.cell(R.measure("ABQ fair", Threads, "us/op", Scale, PoolReps, [&] {
      return fairAbqRun(Threads, Elements, Arena);
    }));
    T.cell(R.measure("ABQ unfair", Threads, "us/op", Scale, PoolReps, [&] {
      return unfairAbqRun(Threads, Elements, Arena);
    }));
    T.cell(R.measure("LBQ", Threads, "us/op", Scale, PoolReps,
                     [&] { return lbqRun(Threads, Elements, Arena); }));
    T.endRow();
  }
}

} // namespace bench
} // namespace cqs

#endif // CQS_BENCH_POOLBENCHCOMMON_H
