//===- bench/scaling_semaphore.cpp - semaphore contention scaling ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Contention-scaling curves for the permit path (DESIGN.md §9):
///
///  - acquire/release throughput of the plain CQS semaphore against the
///    sharded variant (per-core permit caches) as threads grow, at a
///    fixed permit count — the sharded curve should stay flat where the
///    plain one climbs with cacheline bouncing;
///  - the wake path: a releaser pushing permits to suspended acquirers
///    one release() at a time versus release(n) batches (one CQS
///    traversal per batch).
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"
#include "ScalingCommon.h"

#include "reclaim/Ebr.h"
#include "support/Work.h"
#include "sync/Semaphore.h"
#include "sync/ShardedSemaphore.h"

#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

int TotalOps = 200000; // 20000 under --quick
constexpr std::int64_t Permits = 4;
constexpr std::uint64_t WorkMean = 50;
constexpr int Reps = 3;

/// Each thread runs acquire -> tiny critical section -> release; the
/// total operation count is fixed so the curve isolates contention cost.
template <typename SemT> double permitLoop(SemT &S, int Threads) {
  const int PerThread = TotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    GeometricWork Work(WorkMean, 173 + T);
    for (int I = 0; I < PerThread; ++I) {
      auto F = S.acquire();
      if (!F.isImmediate())
        (void)F.blockingGet();
      Work.run();
      S.release();
    }
  });
}

double plainRun(int Threads) {
  Semaphore S(Permits);
  return permitLoop(S, Threads);
}

double shardedRun(int Threads) {
  ShardedSemaphore S(Permits);
  return permitLoop(S, Threads);
}

/// Wake-path cost: \p Waiters threads each drain PerThread permits from
/// an exhausted semaphore while one releaser thread feeds it the exact
/// total, either one release() per permit or in release(Batch) chunks.
double wakeRun(int Waiters, std::int64_t Batch) {
  const int PerThread = TotalOps / (4 * Waiters);
  const std::int64_t Total =
      static_cast<std::int64_t>(Waiters) * PerThread;
  Semaphore S(Total);
  std::vector<Semaphore::FutureType> Held;
  Held.reserve(Total);
  for (std::int64_t I = 0; I < Total; ++I)
    Held.push_back(S.acquire()); // exhaust: every bench permit is owed
  return runThreadTeam(Waiters + 1, [&](int T) {
    if (T == 0) {
      for (std::int64_t Left = Total; Left > 0;) {
        std::int64_t N = Left < Batch ? Left : Batch;
        S.release(N);
        Left -= N;
      }
      return;
    }
    for (int I = 0; I < PerThread; ++I) {
      auto F = S.acquire();
      if (!F.isImmediate())
        (void)F.blockingGet();
    }
  });
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("scaling_semaphore",
             "semaphore contention scaling: plain vs sharded permit "
             "caches, single vs batched wake; avg time per op, lower is "
             "better",
             argc, argv);
  TotalOps = R.ops(200000, 20000);
  banner("Scaling: semaphore",
         "plain vs sharded permit caches; wake loop vs release(n)");
  const std::vector<int> ThreadCounts = scalingThreadCounts(R.quick());

  R.context("permits=" + std::to_string(Permits) +
            ",work=" + std::to_string(WorkMean));
  {
    const double Scale = 1e6 / TotalOps; // us per acquire/release pair
    Table T({"threads", "CQS Semaphore", "Sharded Semaphore"});
    for (int Threads : ThreadCounts) {
      T.cell(std::to_string(Threads));
      T.cell(R.measure("CQS Semaphore", Threads, "us/op", Scale, Reps,
                       [&] { return plainRun(Threads); }));
      T.cell(R.measure("Sharded Semaphore", Threads, "us/op", Scale, Reps,
                       [&] { return shardedRun(Threads); }));
      T.endRow();
    }
  }

  std::printf("\n-- wake path: all acquirers suspended --\n");
  R.context("permits=owed,batch=8");
  {
    Table T({"waiters", "release loop", "release batch"});
    for (int Threads : ThreadCounts) {
      const std::int64_t Total =
          static_cast<std::int64_t>(Threads) * (TotalOps / (4 * Threads));
      const double Scale = 1e6 / static_cast<double>(Total); // us/permit
      // Recorded thread count is the real team size (waiters + the
      // releaser), so bench_compare's oversubscription check sees actual
      // concurrency, not just the swept parameter.
      T.cell(std::to_string(Threads));
      T.cell(R.measure("release loop", Threads + 1, "us/permit", Scale, Reps,
                       [&] { return wakeRun(Threads, 1); }));
      T.cell(R.measure("release batch", Threads + 1, "us/permit", Scale, Reps,
                       [&] { return wakeRun(Threads, 8); }));
      T.endRow();
    }
  }

  R.finish();
  ebr::drainForTesting();
  return 0;
}
