//===- bench/ext_rwlock.cpp - extension: readers-writer lock --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (the paper's §7 future-work list): the fair
/// abortable CQS readers-writer lock against std::shared_mutex (the
/// platform's unfair native RW lock) and a plain CQS mutex (the cost of
/// ignoring read-parallelism) across read/write mixes.
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "support/Work.h"
#include "sync/Mutex.h"
#include "sync/RwMutex.h"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

int TotalOps = 20000; // 4000 under --quick
constexpr std::uint64_t WorkMean = 100;
constexpr int Reps = 3;

template <typename ReadFn, typename WriteFn>
double rwWorkload(int Threads, int WritePercent, ReadFn Read, WriteFn Write) {
  const int PerThread = TotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    SplitMix64 Rng(41 + T);
    GeometricWork Work(WorkMean, 97 + T);
    for (int I = 0; I < PerThread; ++I) {
      if (Rng.chance(WritePercent, 100))
        Write(Work);
      else
        Read(Work);
    }
  });
}

double cqsRwRun(int Threads, int WritePercent) {
  RwMutex Rw;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        (void)Rw.readLock().blockingGet();
        W.run();
        Rw.readUnlock();
      },
      [&](GeometricWork &W) {
        (void)Rw.writeLock().blockingGet();
        W.run();
        Rw.writeUnlock();
      });
}

double sharedMutexRun(int Threads, int WritePercent) {
  std::shared_mutex M;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        std::shared_lock<std::shared_mutex> L(M);
        W.run();
      },
      [&](GeometricWork &W) {
        std::unique_lock<std::shared_mutex> L(M);
        W.run();
      });
}

double plainMutexRun(int Threads, int WritePercent) {
  Mutex M;
  auto Locked = [&](GeometricWork &W) {
    (void)M.lock().blockingGet();
    W.run();
    M.unlock();
  };
  return rwWorkload(Threads, WritePercent, Locked, Locked);
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("ext_rwlock",
             "read/write mixes: avg time per operation, lower is better",
             argc, argv);
  TotalOps = R.ops(20000, 4000);
  banner("Extension: RW lock", "read/write mixes: avg time per operation, "
                               "lower is better");
  const std::vector<int> WriteMixes =
      R.quick() ? std::vector<int>{5} : std::vector<int>{0, 5, 50};
  const std::vector<int> ThreadCounts =
      R.quick() ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const double Scale = 1e6 / TotalOps; // us per operation
  for (int WritePercent : WriteMixes) {
    std::printf("\n-- %d%% writes --\n", WritePercent);
    R.context("writes=" + std::to_string(WritePercent) + "%");
    Table T({"threads", "CQS RwMutex", "std::shared_mutex", "CQS Mutex"});
    for (int Threads : ThreadCounts) {
      T.cell(std::to_string(Threads));
      T.cell(R.measure("CQS RwMutex", Threads, "us/op", Scale, Reps,
                       [&] { return cqsRwRun(Threads, WritePercent); }));
      T.cell(R.measure("std::shared_mutex", Threads, "us/op", Scale, Reps,
                       [&] { return sharedMutexRun(Threads, WritePercent); }));
      T.cell(R.measure("CQS Mutex", Threads, "us/op", Scale, Reps,
                       [&] { return plainMutexRun(Threads, WritePercent); }));
      T.endRow();
    }
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
