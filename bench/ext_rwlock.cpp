//===- bench/ext_rwlock.cpp - extension: readers-writer lock --------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Extension experiment (the paper's §7 future-work list): the fair
/// abortable CQS readers-writer lock against std::shared_mutex (the
/// platform's unfair native RW lock) and a plain CQS mutex (the cost of
/// ignoring read-parallelism) across read/write mixes.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "reclaim/Ebr.h"
#include "support/Rng.h"
#include "support/Work.h"
#include "sync/Mutex.h"
#include "sync/RwMutex.h"

#include <mutex>
#include <shared_mutex>
#include <string>

using namespace cqs;
using namespace cqs::bench;

namespace {

constexpr int TotalOps = 20000;
constexpr std::uint64_t WorkMean = 100;
constexpr int Reps = 3;

template <typename ReadFn, typename WriteFn>
double rwWorkload(int Threads, int WritePercent, ReadFn Read, WriteFn Write) {
  const int PerThread = TotalOps / Threads;
  return runThreadTeam(Threads, [&](int T) {
    SplitMix64 Rng(41 + T);
    GeometricWork Work(WorkMean, 97 + T);
    for (int I = 0; I < PerThread; ++I) {
      if (Rng.chance(WritePercent, 100))
        Write(Work);
      else
        Read(Work);
    }
  });
}

double cqsRwRun(int Threads, int WritePercent) {
  RwMutex Rw;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        (void)Rw.readLock().blockingGet();
        W.run();
        Rw.readUnlock();
      },
      [&](GeometricWork &W) {
        (void)Rw.writeLock().blockingGet();
        W.run();
        Rw.writeUnlock();
      });
}

double sharedMutexRun(int Threads, int WritePercent) {
  std::shared_mutex M;
  return rwWorkload(
      Threads, WritePercent,
      [&](GeometricWork &W) {
        std::shared_lock<std::shared_mutex> L(M);
        W.run();
      },
      [&](GeometricWork &W) {
        std::unique_lock<std::shared_mutex> L(M);
        W.run();
      });
}

double plainMutexRun(int Threads, int WritePercent) {
  Mutex M;
  auto Locked = [&](GeometricWork &W) {
    (void)M.lock().blockingGet();
    W.run();
    M.unlock();
  };
  return rwWorkload(Threads, WritePercent, Locked, Locked);
}

} // namespace

int main() {
  banner("Extension: RW lock", "read/write mixes: avg time per operation, "
                               "lower is better");
  for (int WritePercent : {0, 5, 50}) {
    std::printf("\n-- %d%% writes --\n", WritePercent);
    Table T({"threads", "CQS RwMutex", "std::shared_mutex", "CQS Mutex"});
    for (int Threads : {1, 2, 4, 8}) {
      T.cell(std::to_string(Threads));
      T.cell(1e6 *
             medianOfReps(Reps,
                          [&] { return cqsRwRun(Threads, WritePercent); }) /
             TotalOps);
      T.cell(1e6 * medianOfReps(Reps, [&] {
               return sharedMutexRun(Threads, WritePercent);
             }) / TotalOps);
      T.cell(1e6 *
             medianOfReps(Reps,
                          [&] { return plainMutexRun(Threads, WritePercent); }) /
             TotalOps);
      T.endRow();
    }
  }
  ebr::drainForTesting();
  return 0;
}
