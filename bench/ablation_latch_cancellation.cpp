//===- bench/ablation_latch_cancellation.cpp - latch Section 4.2 ablation -===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Section 4.2's design discussion at the primitive level: N await()s
/// register on a latch and K of them abort; then the final countDown()
/// opens the latch.
///
///  - Simple cancellation: resumeWaiters() still issues one resume per
///    *registered* waiter — the opener pays for the aborted ones.
///  - Smart cancellation: aborted waiters deregister eagerly, so the
///    opener touches only live waiters (plus O(1) per refused racer).
///
/// Reported: microseconds for the opening countDown().
///
//===----------------------------------------------------------------------===//

#include "BenchMain.h"

#include "reclaim/Ebr.h"
#include "sync/CountDownLatch.h"

#include <chrono>
#include <string>
#include <vector>

using namespace cqs;
using namespace cqs::bench;

namespace {

double openingCountDownCost(CancellationMode Mode, int LiveWaiters,
                            int CancelledWaiters) {
  BasicCountDownLatch<16> L(1, Mode);
  const int Total = LiveWaiters + CancelledWaiters;
  std::vector<BasicCountDownLatch<16>::FutureType> Fs;
  Fs.reserve(Total);
  for (int I = 0; I < Total; ++I)
    Fs.push_back(L.await());
  // Cancel CancelledWaiters of them, spread evenly through the queue
  // (Bresenham-style), so cancelled cells pepper every segment.
  long Acc = 0;
  for (int I = 0; I < Total; ++I) {
    Acc += CancelledWaiters;
    if (Acc >= Total) {
      Acc -= Total;
      (void)Fs[I].cancel();
    }
  }

  auto Start = std::chrono::steady_clock::now();
  L.countDown(); // opens the latch, resuming the waiters
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

} // namespace

int main(int argc, char **argv) {
  Reporter R("ablation_latch_cancellation",
             "opening countDown() cost with aborted awaits: simple pays per "
             "registered waiter, smart per live waiter",
             argc, argv);
  banner("Ablation C", "opening countDown() cost with aborted awaits: "
                       "simple pays per registered waiter, smart per live "
                       "waiter");
  Table T({"live/cancelled", "simple us", "smart us"});
  struct Case {
    int Live, Cancelled;
  };
  const std::vector<Case> Cases =
      R.quick() ? std::vector<Case>{Case{64, 0}, Case{64, 1024}}
                : std::vector<Case>{Case{64, 0}, Case{64, 1024},
                                    Case{64, 16384}, Case{1024, 16384}};
  for (Case C : Cases) {
    R.context("live=" + std::to_string(C.Live) +
              ",cancelled=" + std::to_string(C.Cancelled));
    T.cell(std::to_string(C.Live) + "/" + std::to_string(C.Cancelled));
    T.cell(R.measure("simple", 1, "us/open", 1e6, 5, [&] {
      return openingCountDownCost(CancellationMode::Simple, C.Live,
                                  C.Cancelled);
    }));
    T.cell(R.measure("smart", 1, "us/open", 1e6, 5, [&] {
      return openingCountDownCost(CancellationMode::Smart, C.Live,
                                  C.Cancelled);
    }));
    T.endRow();
  }
  R.finish();
  ebr::drainForTesting();
  return 0;
}
