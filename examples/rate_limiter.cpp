//===- examples/rate_limiter.cpp - bounded-parallelism job runner ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A job runner that (a) bounds concurrent jobs with a fair semaphore so
/// bursts cannot starve early arrivals, (b) supports *graceful shutdown*:
/// on stop, every queued-but-not-started job is cancelled in O(1) amortized
/// per job (smart cancellation), while running jobs finish, and (c) uses a
/// fair readers-writer lock for a shared configuration that jobs read and
/// an admin thread occasionally rewrites.
///
/// Build & run:  ./build/examples/rate_limiter
///
//===----------------------------------------------------------------------===//

#include "sync/RwMutex.h"
#include "sync/Semaphore.h"
#include "support/Work.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

struct Config {
  int WorkMean = 150;
  int Version = 0;
};

class RateLimitedRunner {
public:
  RateLimitedRunner(int MaxParallel) : Slots(MaxParallel) {}

  /// Submits a job; returns false if the runner refused it at shutdown.
  bool runJob(int Seed) {
    if (Stopped.load(std::memory_order_acquire))
      return false; // refuse new submissions outright
    auto Permit = Slots.acquire();
    if (!Permit.isImmediate()) {
      // Remember the pending admission so shutdown can abort it.
      {
        std::lock_guard<std::mutex> G(PendingMutex);
        if (ShuttingDown) {
          // Too late to queue: withdraw immediately.
          if (Permit.cancel())
            return false;
        } else {
          Pending.push_back(Permit);
        }
      }
      auto Granted = Permit.blockingGet();
      if (!Granted.has_value())
        return false; // shutdown cancelled our admission
    }

    // Admitted: read the shared config under the read lock and "work".
    (void)Cfg.readLock().blockingGet();
    int Mean = Shared.WorkMean;
    Cfg.readUnlock();
    GeometricWork Work(Mean, Seed);
    Work.run();

    Executed.fetch_add(1);
    Slots.release();
    return true;
  }

  /// Admin path: rewrite the configuration under the write lock.
  void reconfigure(int NewMean) {
    (void)Cfg.writeLock().blockingGet();
    Shared.WorkMean = NewMean;
    ++Shared.Version;
    Cfg.writeUnlock();
  }

  /// Cancels every queued admission; running jobs drain naturally.
  long shutdown() {
    Stopped.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> G(PendingMutex);
    ShuttingDown = true;
    long Aborted = 0;
    for (auto &F : Pending)
      Aborted += F.cancel() ? 1 : 0;
    Pending.clear();
    return Aborted;
  }

  long executed() const { return Executed.load(); }
  int configVersion() const { return Shared.Version; }

private:
  Semaphore Slots;
  RwMutex Cfg;
  Config Shared;
  std::mutex PendingMutex; // protects the bookkeeping list only
  std::vector<Semaphore::FutureType> Pending;
  bool ShuttingDown = false; // guarded by PendingMutex
  std::atomic<bool> Stopped{false};
  std::atomic<long> Executed{0};
};

} // namespace

int main() {
  RateLimitedRunner Runner(/*MaxParallel=*/2);

  std::atomic<long> Refused{0};
  std::vector<std::thread> Producers;
  for (int P = 0; P < 6; ++P) {
    Producers.emplace_back([&, P] {
      for (int J = 0; J < 40000; ++J)
        if (!Runner.runJob(P * 10000 + J))
          Refused.fetch_add(1);
    });
  }
  std::thread Admin([&] {
    for (int I = 0; I < 20; ++I) {
      Runner.reconfigure(100 + 10 * I);
      std::this_thread::yield();
    }
  });

  // Let the system run, then stop it while producers are still submitting.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  long Aborted = Runner.shutdown();

  for (auto &T : Producers)
    T.join();
  Admin.join();

  std::printf("jobs executed:   %ld\n", Runner.executed());
  std::printf("jobs refused:    %ld (including %ld aborted at shutdown)\n",
              Refused.load(), Aborted);
  std::printf("config rewrites: %d\n", Runner.configVersion());
  return 0;
}
