//===- examples/quota_server.cpp - sharded quota service demo -------------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A runnable tour of the end-to-end composition layer (DESIGN.md §13):
/// a sharded quota service built from the library's primitives — ChannelV2
/// request queues, ShardedSemaphore per-tenant limiters with admission
/// deadlines, a StripedRwMutex-guarded tenant table with hot-reload, a
/// blocking connection pool, and whenAnyFor shutdown races.
///
/// The demo configures a hot tenant with a tight limit and a cold tenant
/// with a generous one, drives concurrent client traffic (including clients
/// that give up early, exercising the client-cancel path), hot-reloads the
/// hot tenant's limit mid-traffic, then shuts down and prints the
/// accounting: every submission resolves to exactly one verdict, and every
/// limiter generation conserved its permits.
///
/// Build & run:  ./build/examples/quota_server
///
//===----------------------------------------------------------------------===//

#include "service/QuotaService.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace cqs;
using namespace cqs::service;
using namespace std::chrono;

namespace {

constexpr std::uint64_t HotTenant = 1;
constexpr std::uint64_t ColdTenant = 2;
constexpr std::uint64_t GhostTenant = 99; // never configured

} // namespace

int main() {
  ServiceConfig C;
  C.Dispatchers = 2;
  C.HandlerThreads = 4;
  C.QueueCapacity = 256;
  C.Connections = 16;
  C.Admission = AdmissionMode::Async;
  C.HoldTime = microseconds(200); // simulated backend latency
  QuotaService S(C);

  // A hot tenant with a tight limit (it will shed under load) and a cold
  // tenant that comfortably absorbs its share.
  S.configureTenant(HotTenant, /*Limit=*/2, /*AdmissionDeadline=*/
                    microseconds(300));
  S.configureTenant(ColdTenant, /*Limit=*/32, milliseconds(5));

  std::atomic<long> Served{0}, Shed{0}, GaveUp{0};
  std::vector<std::thread> Clients;
  for (int T = 0; T < 8; ++T) {
    Clients.emplace_back([&, T] {
      for (int I = 0; I < 2000; ++I) {
        // 1 in 4 requests hits the hot tenant; a few target a tenant that
        // was never configured; most clients wait generously, but every
        // 16th gives up almost immediately (client-cancel path).
        std::uint64_t Tenant = (I % 4 == 0) ? HotTenant : ColdTenant;
        if (I % 97 == 0)
          Tenant = GhostTenant;
        nanoseconds Patience =
            (I % 16 == 0) ? nanoseconds(microseconds(10)) : nanoseconds(milliseconds(50));
        std::optional<std::int32_t> V = S.call(Tenant, Patience);
        if (!V)
          GaveUp.fetch_add(1);
        else if (*V == VerdictServed)
          Served.fetch_add(1);
        else
          Shed.fetch_add(1);
        (void)T;
      }
    });
  }

  // Hot-reload the hot tenant's limit mid-traffic: in-flight requests
  // release into the generation they acquired from, so both generations
  // conserve their permits.
  std::this_thread::sleep_for(milliseconds(30));
  S.configureTenant(HotTenant, /*Limit=*/8, microseconds(300));

  for (auto &T : Clients)
    T.join();
  S.shutdown();

  ServiceStatsSnapshot Snap = S.snapshot();
  std::printf("submitted:        %llu\n",
              (unsigned long long)Snap.Submitted);
  std::printf("  served:         %llu\n", (unsigned long long)Snap.Served);
  std::printf("  shed deadline:  %llu\n",
              (unsigned long long)Snap.ShedDeadline);
  std::printf("  shed queue:     %llu\n",
              (unsigned long long)Snap.ShedQueueFull);
  std::printf("  shed unknown:   %llu\n",
              (unsigned long long)Snap.ShedUnknownTenant);
  std::printf("  shed shutdown:  %llu\n",
              (unsigned long long)Snap.ShedShutdown);
  std::printf("  client cancel:  %llu\n",
              (unsigned long long)Snap.ClientCancelled);
  std::printf("client view: served=%ld shed=%ld gave-up=%ld\n", Served.load(),
              Shed.load(), GaveUp.load());
  std::printf("hot reloads:      %llu\n", (unsigned long long)Snap.Reloads);
  std::printf("accounting balanced: %s\n",
              Snap.accountingBalanced() ? "yes" : "NO");

  bool Conserved = true;
  S.table().forEachLimiter([&](std::uint64_t Tenant, const TenantLimiter &L) {
    std::printf("tenant %llu gen %llu: limit=%lld admitted=%llu released=%llu "
                "shed=%llu conserved=%s\n",
                (unsigned long long)Tenant, (unsigned long long)L.Generation,
                (long long)L.Limit, (unsigned long long)L.admitted(),
                (unsigned long long)L.released(),
                (unsigned long long)L.shedCount(),
                L.quiescentConserved() ? "yes" : "NO");
    Conserved = Conserved && L.quiescentConserved();
  });

  if (!Snap.accountingBalanced() || !Conserved) {
    std::printf("FAILED: conservation violated\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
