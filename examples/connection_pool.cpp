//===- examples/connection_pool.cpp - pooled resources with timeouts ------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The workload Section 4.4 motivates: expensive resources (database
/// connections) are shared through a blocking pool. Workers take a
/// connection, run a "query", and put it back; a take() that waits too
/// long is *cancelled* — the CQS makes the timeout path cheap and leak-free
/// (the connection count is conserved, which the example verifies).
///
/// Build & run:  ./build/examples/connection_pool
///
//===----------------------------------------------------------------------===//

#include "sync/Pool.h"
#include "support/Work.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

struct Connection {
  int Id;
  std::atomic<long> QueriesServed{0};
};

/// A take() with a deadline: parks with a timeout (futex-backed), then
/// withdraws the request. cancel() atomically either aborts the wait or
/// loses to an in-flight grant — in which case we own the connection.
Connection *takeWithTimeout(QueueBlockingPool<Connection *> &Pool,
                            std::chrono::microseconds Deadline) {
  auto F = Pool.take();
  if (F.waitFor(Deadline) == FutureStatus::Pending && F.cancel())
    return nullptr; // timed out; the pool forgot us in O(1)
  return *F.blockingGet(); // granted (possibly racing our timeout)
}

} // namespace

int main() {
  constexpr int Connections = 3;
  constexpr int Workers = 8;
  constexpr int QueriesPerWorker = 5000;

  std::vector<Connection> Conns(Connections);
  QueueBlockingPool<Connection *> Pool;
  for (int I = 0; I < Connections; ++I) {
    Conns[I].Id = I;
    Pool.put(&Conns[I]);
  }

  std::atomic<long> Timeouts{0};
  std::atomic<long> Served{0};
  std::vector<std::thread> Ts;
  for (int W = 0; W < Workers; ++W) {
    Ts.emplace_back([&, W] {
      GeometricWork Query(200, 7 + W);
      for (int Q = 0; Q < QueriesPerWorker; ++Q) {
        Connection *C =
            takeWithTimeout(Pool, std::chrono::microseconds(50));
        if (!C) {
          Timeouts.fetch_add(1);
          continue; // back off; a real client would retry later
        }
        Query.run(); // "execute" on the connection
        C->QueriesServed.fetch_add(1);
        Served.fetch_add(1);
        Pool.put(C);
      }
    });
  }
  for (auto &T : Ts)
    T.join();

  std::printf("served %ld queries, %ld takes timed out\n", Served.load(),
              Timeouts.load());
  for (Connection &C : Conns)
    std::printf("  connection %d served %ld\n", C.Id, C.QueriesServed.load());

  // Conservation check: every connection must be back in the pool.
  int Recovered = 0;
  for (int I = 0; I < Connections; ++I) {
    auto F = Pool.take();
    if (F.isImmediate())
      ++Recovered;
  }
  std::printf("connections recovered from pool: %d/%d %s\n", Recovered,
              Connections, Recovered == Connections ? "(ok)" : "(LEAK!)");
  return Recovered == Connections ? 0 : 1;
}
