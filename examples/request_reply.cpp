//===- examples/request_reply.cpp - rendezvous request/reply server -------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A request/reply server built from two channels:
///   - requests flow through a small *buffered* channel (bounded queueing
///     with backpressure: producers slow down instead of overrunning);
///   - each request carries its own *rendezvous* reply channel, so the
///     response is handed directly from worker to client.
///
/// Clients that lose patience abort their receive() — the CQS makes the
/// abandoned wait O(1) and the late reply is conserved inside the reply
/// channel (we drain and count them at the end).
///
/// Build & run:  ./build/examples/request_reply
///
//===----------------------------------------------------------------------===//

#include "sync/Channel.h"
#include "support/Rng.h"
#include "support/Work.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

using namespace cqs;

namespace {

struct RpcRequest {
  int Payload;
  RendezvousChannel<int> *ReplyTo;
};

} // namespace

int main() {
  constexpr int Clients = 6;
  constexpr int Workers = 2;
  constexpr int RequestsPerClient = 3000;

  BufferedChannel<RpcRequest *> Requests(/*Capacity=*/8);
  std::atomic<bool> Shutdown{false};
  std::atomic<long> Served{0}, Answered{0}, Impatient{0}, LateReplies{0};
  std::atomic<long> Stale{0};

  std::vector<std::thread> WorkerThreads;
  for (int W = 0; W < Workers; ++W) {
    WorkerThreads.emplace_back([&, W] {
      GeometricWork Compute(150, 5 + W);
      for (;;) {
        auto R = Requests.receive();
        // Poll for shutdown while idle (a real server would select()).
        while (R.waitFor(std::chrono::milliseconds(1)) ==
               FutureStatus::Pending) {
          if (Shutdown.load()) {
            if (R.cancel())
              return;
            break; // a request arrived as we were leaving: serve it
          }
        }
        RpcRequest *Req = *R.blockingGet();
        Compute.run();
        Served.fetch_add(1);
        // Rendezvous reply: completes only when the client takes it, or
        // parks in the channel if the client gave up (send suspends; we
        // abandon the ack — the reply value itself is conserved).
        auto S = Req->ReplyTo->send(Req->Payload * 2);
        if (!S.isImmediate())
          (void)S.cancel();
        delete Req; // the worker owns the request after receiving it
      }
    });
  }

  std::vector<std::thread> ClientThreads;
  for (int C = 0; C < Clients; ++C) {
    ClientThreads.emplace_back([&, C] {
      RendezvousChannel<int> ReplyTo;
      SplitMix64 Rng(100 + C);
      int Outstanding = 0; // aborted waits whose replies are still due
      for (int I = 0; I < RequestsPerClient; ++I) {
        int Payload = C * 100000 + I;
        // Heap-allocated: the worker owns and frees it after replying,
        // which may happen after this client has long moved on.
        auto *Req = new RpcRequest{Payload, &ReplyTo};
        (void)Requests.send(Req).blockingGet(); // bounded: may backpressure
        auto Reply = ReplyTo.receive();
        // Impatient clients: short deadline, then abort the wait.
        auto Deadline = std::chrono::microseconds(Rng.chance(1, 4) ? 30 : 5000);
        if (Reply.waitFor(Deadline) == FutureStatus::Pending &&
            Reply.cancel()) {
          Impatient.fetch_add(1);
          ++Outstanding;
          continue;
        }
        auto V = Reply.blockingGet();
        if (V.has_value()) {
          Answered.fetch_add(1);
          // After an earlier abort this client's replies arrive shifted
          // by one — the fate of unmatched RPC over a FIFO channel. A
          // real protocol would carry correlation ids; the example just
          // counts the stale deliveries.
          if (*V != Payload * 2)
            Stale.fetch_add(1);
        }
      }
      // Every request is eventually served while the workers run (they
      // stop only after all clients join), so exactly `Outstanding` late
      // replies are still due — drain them before the reply channel goes
      // out of scope. This is the conservation property: abandoned waits
      // never lose the value.
      for (int K = 0; K < Outstanding; ++K)
        if (ReplyTo.receive().blockingGet().has_value())
          LateReplies.fetch_add(1);
    });
  }

  for (auto &T : ClientThreads)
    T.join();
  Shutdown.store(true);
  for (auto &T : WorkerThreads)
    T.join();
  // Workers may have left unserved requests behind at shutdown; free them.
  while (auto Leftover = Requests.tryReceive())
    delete *Leftover;

  std::printf("requests served:   %ld\n", Served.load());
  std::printf("replies received:  %ld (%ld stale after timeouts)\n",
              Answered.load(), Stale.load());
  std::printf("client timeouts:   %ld (late replies drained: %ld)\n",
              Impatient.load(), LateReplies.load());
  long Accounted = Answered.load() + LateReplies.load();
  std::printf("reply conservation: %ld accounted of %ld served %s\n",
              Accounted, Served.load(),
              Accounted == Served.load() ? "(ok)" : "(LOST OR DUPLICATED!)");
  return Accounted == Served.load() ? 0 : 1;
}
