//===- examples/coroutine_pipeline.cpp - CQS primitives on coroutines -----===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// The setting the paper was built for: thousands of lightweight tasks,
/// far more than OS threads, suspending on synchronization primitives
/// without ever blocking a worker. A two-stage pipeline:
///
///   stage 1: N producer coroutines put items into a blocking pool of
///            reusable buffers (bounded by the buffer count);
///   stage 2: consumer coroutines take buffers, aggregate under a CQS
///            mutex, and recycle the buffers.
///
/// Build & run:  ./build/examples/coroutine_pipeline
///
//===----------------------------------------------------------------------===//

#include "sync/Mutex.h"
#include "sync/Pool.h"
#include "support/WaitGroup.h"
#include "support/Work.h"
#include "task/Awaitable.h"
#include "task/Executor.h"
#include "task/Task.h"

#include <atomic>
#include <cstdio>
#include <vector>

using namespace cqs;

namespace {

struct Buffer {
  int Payload = 0;
};

struct Pipeline {
  QueueBlockingPool<Buffer *> FreeBuffers;  // recycled empties
  QueueBlockingPool<Buffer *> FilledBuffers; // handoff to consumers
  Mutex TotalsMutex;
  long Total = 0; // guarded by TotalsMutex
  std::atomic<long> ItemsProduced{0};
};

FireAndForget producer(Pipeline &P, int Items, int Seed, WaitGroup &Wg) {
  GeometricWork Produce(120, Seed);
  for (int I = 0; I < Items; ++I) {
    // Wait (suspending the coroutine, not the thread) for a free buffer.
    auto Buf = co_await awaitFuture(P.FreeBuffers.take());
    Produce.run();
    (*Buf)->Payload = 1;
    P.ItemsProduced.fetch_add(1);
    P.FilledBuffers.put(*Buf);
  }
  Wg.done();
}

FireAndForget consumer(Pipeline &P, int Items, WaitGroup &Wg) {
  for (int I = 0; I < Items; ++I) {
    auto Buf = co_await awaitFuture(P.FilledBuffers.take());
    int V = (*Buf)->Payload;
    (*Buf)->Payload = 0;
    P.FreeBuffers.put(*Buf); // recycle before the slow aggregation
    auto Lock = co_await awaitFuture(P.TotalsMutex.lock());
    (void)Lock;
    P.Total += V;
    P.TotalsMutex.unlock();
  }
  Wg.done();
}

} // namespace

int main() {
  constexpr int Producers = 40;
  constexpr int Consumers = 40;
  constexpr int ItemsPerTask = 250;
  constexpr int Buffers = 8;

  Executor Exec(/*Threads=*/4);
  Pipeline P;
  std::vector<Buffer> Arena(Buffers);
  for (Buffer &B : Arena)
    P.FreeBuffers.put(&B);

  WaitGroup Wg(Producers + Consumers);
  for (int I = 0; I < Producers; ++I)
    producer(P, ItemsPerTask, 1000 + I, Wg).spawn(Exec);
  for (int I = 0; I < Consumers; ++I)
    consumer(P, ItemsPerTask, Wg).spawn(Exec);
  Wg.wait();

  long Expected = static_cast<long>(Producers) * ItemsPerTask;
  std::printf("items produced: %ld\n", P.ItemsProduced.load());
  std::printf("items consumed: %ld (expected %ld) %s\n", P.Total, Expected,
              P.Total == Expected ? "(ok)" : "(MISMATCH!)");
  std::printf("%d coroutines shared %d buffers on %u threads without "
              "blocking a single worker\n",
              Producers + Consumers, Buffers, Exec.threadCount());
  return P.Total == Expected ? 0 : 1;
}
