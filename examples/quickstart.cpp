//===- examples/quickstart.cpp - first steps with the CQS library ---------===//
//
// Part of the CQS reproduction library, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A whirlwind tour of the public API:
///   1. blocking operations return futures (immediate on the fast path);
///   2. a mutex protects a critical section across threads;
///   3. waiting is abortable: cancel() withdraws a queued request;
///   4. a count-down latch joins a batch of workers.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "sync/CountDownLatch.h"
#include "sync/Mutex.h"
#include "sync/Semaphore.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace cqs;

int main() {
  // ---------------------------------------------------------------- 1 ----
  // Every blocking operation returns a Future. On the uncontended path it
  // is an immediate result: no allocation, no suspension.
  Semaphore Sem(2);
  auto First = Sem.acquire();
  std::printf("first acquire immediate?   %s\n",
              First.isImmediate() ? "yes" : "no");
  auto Second = Sem.acquire();
  auto Third = Sem.acquire(); // no permit left: this one suspends
  std::printf("third acquire pending?     %s\n",
              Third.status() == FutureStatus::Pending ? "yes" : "no");
  Sem.release(); // wakes the suspended acquire in FIFO order
  std::printf("third acquire completed?   %s\n",
              Third.status() == FutureStatus::Completed ? "yes" : "no");
  Sem.release();
  Sem.release();

  // ---------------------------------------------------------------- 2 ----
  // The mutex is the semaphore with one permit; threads block by parking
  // on the returned future.
  Mutex M;
  long Counter = 0;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T) {
    Ts.emplace_back([&] {
      for (int I = 0; I < 10000; ++I) {
        (void)M.lock().blockingGet();
        ++Counter; // protected
        M.unlock();
      }
    });
  }
  for (auto &T : Ts)
    T.join();
  std::printf("counter under mutex:       %ld (expected 40000)\n", Counter);

  // ---------------------------------------------------------------- 3 ----
  // Abortability: a queued request can be withdrawn; the primitive's state
  // is repaired by the smart-cancellation handler.
  auto Held = M.lock();
  auto Waiting = M.lock();
  bool Aborted = Waiting.cancel();
  M.unlock();
  std::printf("waiting lock aborted?      %s; mutex free again? %s\n",
              Aborted ? "yes" : "no", !M.isLocked() ? "yes" : "no");

  // ---------------------------------------------------------------- 4 ----
  // Count-down latch: the main thread awaits a batch of workers.
  CountDownLatch Latch(4);
  std::vector<std::thread> Workers;
  for (int W = 0; W < 4; ++W)
    Workers.emplace_back([&] { Latch.countDown(); });
  (void)Latch.await().blockingGet();
  std::printf("latch opened after %d workers\n", 4);
  for (auto &W : Workers)
    W.join();
  return 0;
}
